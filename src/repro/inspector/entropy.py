"""Household-fingerprintability entropy analysis (§6.3, Table 2).

From every mDNS and SSDP payload we extract what appear to be unique
identifiers:

1. **Names** — "an English word followed by an apostrophe, 's', space,
   and another word" (e.g. ``Roku 3 - REDACTED's Room``).
2. **UUIDs** — the standard RFC 4122 pattern.
3. **MAC addresses** — standard formats with and without separators,
   validated against the OUI IoT Inspector collected for the device to
   reduce false positives.

Fingerprintability is quantified as entropy ``-log2(1/N)`` (N = number
of distinct values per identifier type, the EFF "Cover Your Tracks"
measure) and as the fraction of households uniquely identified by their
identifier-value combination.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.inspector.schema import Household, InspectedDevice, InspectorDataset

#: "an English word... followed by an apostrophe, 's', space, another word"
NAME_RE = re.compile(r"\b([A-Z][A-Za-z]+)'s\s+(\w+)")
UUID_RE = re.compile(
    r"\b[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}\b"
)
MAC_SEPARATED_RE = re.compile(r"\b(?:[0-9a-fA-F]{2}[:-]){5}[0-9a-fA-F]{2}\b")
MAC_BARE_RE = re.compile(r"\b[0-9a-fA-F]{12}\b")


def extract_names(text: str) -> Set[str]:
    """First-name identifiers ("Alex's Room" -> "Alex")."""
    return {match.group(1) for match in NAME_RE.finditer(text)}


def extract_uuids(text: str) -> Set[str]:
    return {match.group(0).lower() for match in UUID_RE.finditer(text)}


def extract_macs(text: str, oui: Optional[str] = None, validate_oui: bool = True) -> Set[str]:
    """MAC-address identifiers, OUI-validated to cut false positives.

    The §6.3 method compares each candidate with the OUI IoT Inspector
    collected for the device and filters mismatches.
    """
    candidates: Set[str] = set()
    for match in MAC_SEPARATED_RE.finditer(text):
        candidates.add(match.group(0).lower().replace("-", ":"))
    for match in MAC_BARE_RE.finditer(text):
        raw = match.group(0).lower()
        candidates.add(":".join(raw[i : i + 2] for i in range(0, 12, 2)))
    if not validate_oui or oui is None:
        return candidates
    prefix = oui.lower().replace("-", ":")
    return {mac for mac in candidates if mac.startswith(prefix)}


def device_identifiers(device: InspectedDevice, validate_oui: bool = True) -> Dict[str, Set[str]]:
    """Extract all three identifier classes from one device's payloads."""
    text = device.all_payload_text()
    return {
        "name": extract_names(text),
        "uuid": {u for u in extract_uuids(text)},
        "mac": extract_macs(text, device.oui, validate_oui),
    }


@dataclass
class ExposureRow:
    """One row of Table 2: households exposing a given identifier set."""

    identifier_types: FrozenSet[str]
    products: Set[str] = field(default_factory=set)
    vendors: Set[str] = field(default_factory=set)
    devices: int = 0
    households: Set[str] = field(default_factory=set)
    #: household id -> frozenset of identifier values (the fingerprint)
    fingerprints: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    @property
    def type_count(self) -> int:
        return len(self.identifier_types)

    @property
    def household_count(self) -> int:
        return len(self.households)

    def unique_household_fraction(self) -> float:
        """Fraction of households uniquely identified by their values."""
        if not self.fingerprints:
            return 0.0
        counts = Counter(self.fingerprints.values())
        unique = sum(1 for fingerprint in self.fingerprints.values() if counts[fingerprint] == 1)
        return unique / len(self.fingerprints)

    def to_dict(self) -> Dict[str, object]:
        """A canonical JSON-able form (sets become sorted lists)."""
        return {
            "identifier_types": sorted(self.identifier_types),
            "products": sorted(self.products),
            "vendors": sorted(self.vendors),
            "devices": self.devices,
            "households": sorted(self.households),
            "fingerprints": {
                household: sorted(values)
                for household, values in sorted(self.fingerprints.items())
            },
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ExposureRow":
        return cls(
            identifier_types=frozenset(raw["identifier_types"]),
            products=set(raw["products"]),
            vendors=set(raw["vendors"]),
            devices=int(raw["devices"]),
            households=set(raw["households"]),
            fingerprints={
                household: frozenset(values)
                for household, values in raw["fingerprints"].items()
            },
        )

    def absorb(self, other: "ExposureRow") -> None:
        """Merge another partial row for the same identifier-type set.

        All aggregation is additive over households (partials cover
        disjoint household ranges), so union/sum is exact.
        """
        self.products |= other.products
        self.vendors |= other.vendors
        self.devices += other.devices
        self.households |= other.households
        self.fingerprints.update(other.fingerprints)


@dataclass
class EntropyAnalysis:
    """The full Table 2 computation."""

    rows: Dict[FrozenSet[str], ExposureRow] = field(default_factory=dict)
    #: identifier type -> set of distinct observed values (for entropy)
    distinct_values: Dict[str, Set[str]] = field(default_factory=dict)
    none_row: ExposureRow = field(
        default_factory=lambda: ExposureRow(identifier_types=frozenset())
    )

    def entropy_of(self, identifier_type: str) -> float:
        """-log2(1/N) over distinct values of one identifier type."""
        count = len(self.distinct_values.get(identifier_type, ()))
        return math.log2(count) if count > 0 else 0.0

    def entropy_of_combination(self, types: FrozenSet[str]) -> float:
        """Combined entropy: independent identifiers add (Table 2 rows)."""
        return sum(self.entropy_of(identifier_type) for identifier_type in sorted(types))

    def table_rows(self) -> List[Tuple[int, str, ExposureRow, float]]:
        """(type_count, label, row, entropy), ordered like Table 2."""
        ordered = sorted(
            self.rows.values(),
            key=lambda row: (row.type_count, ",".join(sorted(row.identifier_types))),
        )
        output = [(0, "N/A", self.none_row, 0.0)]
        for row in ordered:
            label = ", ".join(sorted(row.identifier_types))
            output.append((row.type_count, label, row, self.entropy_of_combination(row.identifier_types)))
        return output

    # -- shard partials (the fleet merge contract) ---------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A canonical JSON-able partial, the fleet's shard payload.

        Every aggregate in an :class:`EntropyAnalysis` is additive over
        households — set unions and integer sums — so an analysis of
        any household subset serializes to a *partial* that
        :meth:`merge` can combine losslessly with partials of the
        remaining households.
        """
        return {
            "rows": [row.to_dict() for _, row in sorted(
                self.rows.items(),
                key=lambda item: (len(item[0]), ",".join(sorted(item[0]))),
            )],
            "none_row": self.none_row.to_dict(),
            "distinct_values": {
                identifier_type: sorted(values)
                for identifier_type, values in sorted(self.distinct_values.items())
            },
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "EntropyAnalysis":
        analysis = cls(
            none_row=ExposureRow.from_dict(raw["none_row"]),
            distinct_values={
                identifier_type: set(values)
                for identifier_type, values in raw["distinct_values"].items()
            },
        )
        for row_raw in raw["rows"]:
            row = ExposureRow.from_dict(row_raw)
            analysis.rows[row.identifier_types] = row
        return analysis

    def absorb(self, other: "EntropyAnalysis") -> None:
        """Merge another partial (covering disjoint households) in place."""
        for types, row in other.rows.items():
            mine = self.rows.setdefault(types, ExposureRow(identifier_types=types))
            mine.absorb(row)
        self.none_row.absorb(other.none_row)
        for identifier_type, values in other.distinct_values.items():
            self.distinct_values.setdefault(identifier_type, set()).update(values)

    @classmethod
    def merge(cls, partials: "List[EntropyAnalysis]") -> "EntropyAnalysis":
        """Combine per-shard partials into the population analysis.

        Exact, not approximate: for partials covering disjoint
        household ranges, the merge equals :func:`analyze_dataset` over
        the union of their households.
        """
        merged = cls()
        for partial in partials:
            merged.absorb(partial)
        return merged


def analyze_dataset(dataset: InspectorDataset, validate_oui: bool = True) -> EntropyAnalysis:
    """Run the §6.3 extraction + entropy computation over the corpus."""
    analysis = EntropyAnalysis()
    for household in dataset.households:
        # identifier-type set -> pooled values for this household
        per_combo: Dict[FrozenSet[str], Set[str]] = {}
        for device in household.devices:
            identifiers = device_identifiers(device, validate_oui)
            exposed = frozenset(
                identifier_type for identifier_type, values in identifiers.items() if values
            )
            if not exposed:
                analysis.none_row.products.add(device.truth_product)
                analysis.none_row.vendors.add(device.truth_vendor)
                analysis.none_row.devices += 1
                analysis.none_row.households.add(household.user_id)
                continue
            row = analysis.rows.setdefault(exposed, ExposureRow(identifier_types=exposed))
            row.products.add(device.truth_product)
            row.vendors.add(device.truth_vendor)
            row.devices += 1
            row.households.add(household.user_id)
            values: Set[str] = set()
            for identifier_type in exposed:
                for value in identifiers[identifier_type]:
                    values.add(value)
                    analysis.distinct_values.setdefault(identifier_type, set()).add(value)
            per_combo.setdefault(exposed, set()).update(values)
        for exposed, values in per_combo.items():
            analysis.rows[exposed].fingerprints[household.user_id] = frozenset(values)
    return analysis
