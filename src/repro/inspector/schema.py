"""Schema of the crowdsourced dataset (§3.3).

IoT Inspector collects: source/destination IPs and ports, device IDs
(HMAC-SHA256 of the MAC with a per-user salt), byte counts over
five-second windows, DHCP/DNS hostnames, and full mDNS and SSDP
responses.  It does *not* collect other payloads.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, List, Optional


def hashed_device_id(mac: str, user_salt: bytes) -> str:
    """The privacy-preserving device id: HMAC-SHA256(salt, MAC) (§3.3)."""
    digest = hmac.new(user_salt, mac.lower().encode("utf-8"), hashlib.sha256)
    return digest.hexdigest()


@dataclass
class FlowRecord:
    """Bytes sent/received by a device over one five-second window."""

    window_start: float
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    transport: str
    bytes_sent: int
    bytes_received: int


@dataclass
class InspectedDevice:
    """One device as IoT Inspector records it."""

    device_id: str  # HMAC of MAC (what the dataset actually stores)
    oui: str  # first three MAC octets (collected for vendor inference)
    dhcp_hostname: str = ""
    mdns_responses: List[bytes] = field(default_factory=list)
    ssdp_responses: List[bytes] = field(default_factory=list)
    hostnames_contacted: List[str] = field(default_factory=list)
    user_label_vendor: str = ""  # crowdsourced, possibly misspelled
    user_label_category: str = ""
    # Ground truth kept by the generator for validation only (a real
    # crowdsourced dataset does not have these).
    truth_vendor: str = ""
    truth_category: str = ""
    truth_mac: str = ""

    @property
    def truth_product(self) -> str:
        """The paper's product unit: a vendor-category combination."""
        return f"{self.truth_vendor}/{self.truth_category}"

    def all_payload_text(self) -> str:
        """Concatenated decodable text of all collected payloads."""
        chunks: List[str] = []
        for payload in self.mdns_responses + self.ssdp_responses:
            chunks.append(payload.decode("utf-8", "replace"))
        return "\n".join(chunks)


@dataclass
class Household:
    """One participating user/household."""

    user_id: str
    devices: List[InspectedDevice] = field(default_factory=list)
    flows: List[FlowRecord] = field(default_factory=list)

    @property
    def device_count(self) -> int:
        return len(self.devices)


@dataclass
class InspectorDataset:
    """The full crowdsourced corpus."""

    households: List[Household] = field(default_factory=list)

    @property
    def device_count(self) -> int:
        return sum(household.device_count for household in self.households)

    @property
    def household_count(self) -> int:
        return len(self.households)

    def all_devices(self) -> List[InspectedDevice]:
        return [device for household in self.households for device in household.devices]

    def vendors(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for device in self.all_devices():
            counts[device.truth_vendor] = counts.get(device.truth_vendor, 0) + 1
        return counts

    def products(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for device in self.all_devices():
            counts[device.truth_product] = counts.get(device.truth_product, 0) + 1
        return counts
