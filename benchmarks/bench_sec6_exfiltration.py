"""§6.1/§6.2: dissemination of local-network data beyond the LAN.

Paper: 9% of the 2,335 apps scan the home network (mDNS 6.0%, SSDP
4.0%, NetBIOS 10 apps); 6 IoT apps relay device MACs; 28 apps upload
the router MAC, 36 the router SSID, 15 the Wi-Fi MAC; 13 companion
apps receive MACs in downlink traffic; SDK case studies: innosdk,
AppDynamics (base64 side channel), umlaut insightCore, MyTracker.
"""

from repro.core.exfiltration import audit_app_runs, sdk_case_studies
from repro.report.tables import render_comparison, render_table


def bench_sec6_exfiltration(benchmark, app_runs):
    audit = benchmark.pedantic(audit_app_runs, args=(app_runs,), rounds=1, iterations=1)
    summary = audit.summary()
    print()
    print(render_comparison([
        ("apps analyzed", 2335, summary["total_apps"]),
        ("apps scanning the LAN %", 9.0, round(summary["scanners_pct"], 1)),
        ("apps using mDNS %", 6.0, round(summary["mdns_pct"], 1)),
        ("apps using SSDP %", 4.0, round(summary["ssdp_pct"], 1)),
        ("apps using NetBIOS", 10, summary["netbios_apps"]),
        ("IoT apps relaying device MACs", 6, summary["device_mac_relaying_iot_apps"]),
        ("apps uploading router MAC", 28, summary["router_mac_apps"]),
        ("apps uploading router SSID", 36, summary["router_ssid_apps"]),
        ("apps uploading Wi-Fi MAC", 15, summary["wifi_mac_apps"]),
        ("apps receiving downlink MACs", 13, summary["downlink_mac_apps"]),
        ("apps bypassing permissions via side channel", ">0", summary["side_channel_apps"]),
    ], title="§6.1 exfiltration — paper vs measured"))

    studies = sdk_case_studies(audit)
    rows = [
        (sdk, ", ".join(data["endpoints"]), ", ".join(data["identifiers"]))
        for sdk, data in studies.items()
    ]
    print()
    print(render_table(["SDK", "endpoints", "identifiers"], rows,
                       title="§6.2 SDK case studies"))
    assert abs(summary["mdns_pct"] - 6.0) < 1.0
    assert summary["netbios_apps"] == 10
    assert "innosdk" in studies and "AppDynamics" in studies
    assert studies["AppDynamics"]["base64_encoded"]
