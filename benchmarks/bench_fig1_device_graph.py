"""Figure 1: the transport-layer device-to-device communication graph.

Paper: nearly half (43/93) of devices contact at least one other device
using TCP or UDP unicast; the graph clusters by vendor/platform.
"""

from repro.core.device_graph import build_device_graph
from repro.report.tables import render_comparison


def bench_fig1_device_graph(benchmark, lab_run, lab_index):
    testbed, packets, maps = lab_run
    graph = benchmark.pedantic(
        build_device_graph,
        args=(lab_index, maps["macs"], maps["vendors"]),
        rounds=1,
        iterations=1,
    )
    summary = graph.summary()
    print()
    print(render_comparison([
        ("devices in testbed", 93, summary["devices_total"]),
        ("devices communicating locally", 43, summary["devices_communicating"]),
        ("pairs using both TCP and UDP (thick edges)", "present", summary["pairs_tcp_and_udp"]),
    ], title="Figure 1 — paper vs measured"))
    assert 38 <= summary["devices_communicating"] <= 50
