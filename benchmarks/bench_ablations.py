"""Ablations for the DESIGN.md design choices.

1. Response-correlation window sweep (Table 4 depends on the 3 s window).
2. OUI validation in MAC extraction (§6.3 false-positive filter).
3. Periodicity detector: DFT-only vs autocorrelation-only vs both.
4. mDNS name compression: wire size with vs without.
"""

from repro.core.periodicity import analyze_periodicity
from repro.core.responses import correlate_responses
from repro.inspector.entropy import analyze_dataset
from repro.report.tables import render_table


def bench_ablation_response_window(benchmark, lab_run):
    testbed, packets, maps = lab_run

    def sweep():
        rows = []
        for window in (0.5, 1.0, 3.0, 10.0):
            correlation = correlate_responses(
                packets, maps["macs"], maps["categories"], window=window
            )
            responders = sum(
                len(stats.responders) for stats in correlation.per_device.values()
            )
            with_response = sum(
                len(stats.protocols_with_response)
                for stats in correlation.per_device.values()
            )
            rows.append((window, with_response, responders))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["window (s)", "protocol-responses", "responder links"],
        rows, title="Ablation: Appendix D.2 response window (paper uses 3 s)",
    ))
    by_window = {row[0]: row[2] for row in rows}
    assert by_window[10.0] >= by_window[0.5]


def bench_ablation_oui_validation(benchmark, inspector_dataset):
    def compare():
        with_oui = analyze_dataset(inspector_dataset, validate_oui=True)
        without = analyze_dataset(inspector_dataset, validate_oui=False)
        return (
            len(with_oui.distinct_values.get("mac", ())),
            len(without.distinct_values.get("mac", ())),
        )

    validated, unvalidated = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print(render_table(
        ["variant", "distinct MAC identifiers"],
        [("OUI-validated (§6.3 method)", validated),
         ("no OUI filter", unvalidated)],
        title="Ablation: OUI validation of MAC extraction",
    ))
    assert unvalidated >= validated


def bench_ablation_periodicity_detectors(benchmark, lab_run):
    testbed, packets, maps = lab_run

    def compare():
        rows = []
        for name, use_dft, use_autocorr in (
            ("DFT + autocorrelation (paper)", True, True),
            ("DFT only", True, False),
            ("autocorrelation only", False, True),
        ):
            result = analyze_periodicity(
                packets, maps["macs"], use_dft=use_dft, use_autocorr=use_autocorr
            )
            rows.append((name, f"{result.periodic_fraction:.0%}", len(result.periodic_groups)))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print(render_table(["detector", "periodic fraction", "periodic groups"], rows,
                       title="Ablation: periodicity detector composition"))
    combined = int(rows[0][2])
    dft_only = int(rows[1][2])
    assert combined <= dft_only  # the AND-combination is the strictest


def bench_ablation_dns_compression(benchmark):
    from repro.protocols.dns import DnsMessage, DnsRecord

    def measure():
        message = DnsMessage(is_response=True)
        for index in range(10):
            message.answers.append(
                DnsRecord.ptr("_googlecast._tcp.local",
                              f"Chromecast-{index:02d}._googlecast._tcp.local")
            )
        return len(message.encode(compress=True)), len(message.encode(compress=False))

    compressed, uncompressed = benchmark(measure)
    print()
    print(render_table(
        ["encoding", "bytes"],
        [("with RFC 1035 compression", compressed), ("without", uncompressed)],
        title="Ablation: mDNS name compression",
    ))
    assert compressed < uncompressed
