"""Figure 2: % of devices (and apps) per protocol, by method.

Paper anchors: 21 passively observed protocols; ARP/DHCP 92%, EAPOL 84%,
ICMP 78%, IGMP 56%, mDNS 44%, HTTP 40%, SSDP 35%, TLS 35%, TPLINK-SHP
26%, TuyaLP 5%, RTP 10%; an average device uses ~8 protocols; apps:
mDNS 6%, SSDP 4%, NetBIOS 0.5%, TLS 25%.
"""

from repro.core.protocol_census import (
    add_app_results,
    add_scan_results,
    census_from_capture,
)
from repro.report.tables import render_comparison, render_figure2


def bench_fig2_protocol_census(benchmark, lab_run, lab_index, scan_report, app_runs):
    testbed, packets, maps = lab_run

    def build():
        census = census_from_capture(lab_index, maps["macs"])
        add_scan_results(census, scan_report)
        add_app_results(census, app_runs, total_apps=len(app_runs))
        return census

    census = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_figure2(census, top=22))
    print()
    print(render_comparison([
        ("ARP %devices (passive)", 92, round(100 * census.passive_fraction("ARP"))),
        ("DHCP %devices", 92, round(100 * census.passive_fraction("DHCP"))),
        ("EAPOL %devices", 84, round(100 * census.passive_fraction("EAPOL"))),
        ("ICMP %devices", 78, round(100 * census.passive_fraction("ICMP"))),
        ("IGMP %devices", 56, round(100 * census.passive_fraction("IGMP"))),
        ("mDNS %devices", 44, round(100 * census.passive_fraction("mDNS"))),
        ("SSDP %devices", 35, round(100 * census.passive_fraction("SSDP"))),
        ("TLS %devices", 35, round(100 * census.passive_fraction("TLS"))),
        ("TPLINK-SHP %devices", 26, round(100 * census.passive_fraction("TPLINK_SHP"))),
        ("TuyaLP %devices", 5, round(100 * census.passive_fraction("TuyaLP"))),
        ("RTP %devices", 10, round(100 * census.passive_fraction("RTP"))),
        ("avg protocols per device", 8.0, round(census.average_protocols_per_device(), 1)),
        ("apps using mDNS %", 6.0, round(100 * census.app_fraction("mDNS"), 1)),
        ("apps using SSDP %", 4.0, round(100 * census.app_fraction("SSDP"), 1)),
        ("apps using NetBIOS %", 0.5, round(100 * census.app_fraction("NETBIOS"), 2)),
        ("apps using TLS %", 25.0, round(100 * census.app_fraction("TLS"), 1)),
    ], title="Figure 2 anchors — paper vs measured"))
    assert census.passive_fraction("ARP") > 0.85
    assert abs(census.app_fraction("mDNS") - 0.06) < 0.01
