"""Figure 4: vendor-specific TCP/UDP communication clusters.

Paper: Google and Amazon clusters communicate over TLS 1.2 + unknown
UDP; the Amazon UDP cluster has a clear coordinator; Apple devices use
TLS 1.3.
"""

from repro.core.device_graph import build_device_graph
from repro.report.tables import render_comparison, render_table


def bench_fig4_vendor_clusters(benchmark, lab_run):
    testbed, packets, maps = lab_run
    graph = benchmark.pedantic(
        build_device_graph, args=(packets, maps["macs"], maps["vendors"]),
        rounds=1, iterations=1,
    )
    rows = []
    for vendor in ("Google", "Amazon", "Apple"):
        for transport in ("tcp", "udp"):
            cluster = graph.vendor_cluster(vendor, transport)
            connected = sum(1 for node in cluster.nodes if cluster.degree(node) > 0)
            rows.append((vendor, transport, connected, cluster.number_of_edges()))
    print()
    print(render_table(["vendor", "transport", "devices connected", "edges"], rows,
                       title="Figure 4 — vendor cluster sizes"))
    coordinator = graph.coordinator_of("Amazon", "udp")
    amazon_udp = graph.vendor_cluster("Amazon", "udp")
    degrees = sorted((amazon_udp.degree(node) for node in amazon_udp.nodes), reverse=True)
    print()
    print(render_comparison([
        ("Amazon UDP cluster has clear coordinator (Fig. 4e)", "yes",
         f"{coordinator} (degree {degrees[0]} vs next {degrees[1] if len(degrees) > 1 else 0})"),
        ("Apple cluster present (Fig. 4c/4f)", "yes",
         graph.vendor_cluster("Apple").number_of_edges() > 0),
    ], title="Figure 4 anchors"))
    assert coordinator is not None
    assert degrees[0] >= 3 * max(degrees[1], 1)
