"""§5.1: ARP scanning and response behaviour.

Paper: Echo devices broadcast-sweep the entire local IP space daily and
unicast-probe 83% of other devices; only 58% of devices answer the
broadcast sweeps while all answer unicast; six devices ARP for public
IPs.
"""

from repro.core.arp_analysis import analyze_arp
from repro.report.tables import render_comparison


def bench_sec51_arp(benchmark, lab_run):
    testbed, packets, maps = lab_run
    ips = {node.name: node.ip for node in testbed.devices}
    analysis = benchmark.pedantic(
        analyze_arp, args=(packets, maps["macs"], ips), rounds=1, iterations=1
    )
    sweepers = analysis.sweepers()
    echo_coverage = (
        analysis.unicast_probe_coverage(sweepers[0], len(testbed.devices))
        if sweepers else 0.0
    )
    print()
    print(render_comparison([
        ("devices broadcast-sweeping the IP space", "Echo fleet (17)", len(sweepers)),
        ("Echo unicast probe coverage", "83%", f"{echo_coverage:.0%}"),
        ("broadcast ARP response rate", "58%", f"{analysis.broadcast_response_rate():.0%}"),
        ("unicast ARP response rate", "100%", f"{analysis.unicast_response_rate():.0%}"),
        ("devices ARPing public IPs", 6, len(analysis.public_ip_probers())),
    ], title="§5.1 ARP — paper vs measured"))
    assert len(sweepers) == 17
    assert analysis.unicast_response_rate() > 0.99
    assert len(analysis.public_ip_probers()) == 6
