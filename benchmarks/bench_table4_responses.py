"""Table 4: discovery protocols used / responded to, per device group.

Paper: Amazon Echo 3.65 discovery protocols / 1.82 with responses /
9.47 devices responded to; Google&Nest 4.0/3.0/5.14; Apple 1.0/1.0/5.0;
Tuya 1.0/0.0/0.0; Appliances 2.0/0.0/0.0.
"""

from repro.core.responses import correlate_responses
from repro.report.tables import render_comparison, render_table4

PAPER_TABLE4 = {
    "Amazon Echo": (3.65, 1.82, 9.47),
    "Google&Nest": (4.0, 3.0, 5.14),
    "Apple": (1.0, 1.0, 5.0),
    "Tuya": (1.0, 0.0, 0.0),
    "TVs": (1.4, 1.0, 2.0),
    "Cameras": (1.17, 1.0, 1.5),
    "Hubs": (1.5, 0.0, 0.0),
    "Home Auto": (1.0, 1.0, 1.0),
    "Appliances": (2.0, 0.0, 0.0),
}


def bench_table4_responses(benchmark, lab_run, lab_index):
    testbed, packets, maps = lab_run
    correlation = benchmark.pedantic(
        correlate_responses, args=(lab_index, maps["macs"], maps["categories"]),
        rounds=1, iterations=1,
    )
    print()
    print(render_table4(correlation))
    measured = {row[0]: row[1:] for row in correlation.by_category()}
    rows = []
    for category, paper_values in PAPER_TABLE4.items():
        values = measured.get(category)
        rows.append((
            category,
            "/".join(f"{v:.2f}" for v in paper_values),
            "/".join(f"{v:.2f}" for v in values) if values else "absent",
        ))
    print()
    print(render_comparison(rows, title="Table 4 — paper vs measured (#disc/#resp/#devices)"))
    echo = measured.get("Amazon Echo")
    assert echo is not None
    # Shape: Echo is responded to by the most devices, Tuya by none.
    assert echo[2] == max(values[2] for values in measured.values())
    if "Tuya" in measured:
        assert measured["Tuya"][2] == 0.0
