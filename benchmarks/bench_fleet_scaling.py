"""Fleet scaling: serial baseline vs sharded workers, cold vs warm cache.

The tentpole claim of :mod:`repro.fleet`, measured directly: how long
the §6.3 population takes through the serial
:func:`~repro.core.fingerprint.fingerprint_households` path, through
the fleet runner at 1/2/4/8 workers cold, and through a warm
content-addressed cache — while asserting the sharded report stays
**byte-identical** to the serial one at every width.  Speedup ratios
only mean something on multi-core hosts (CI containers are often
single-core), so the benches report the numbers and gate on
correctness, never on a ratio.

Also runnable standalone as the CI fleet smoke::

    PYTHONPATH=src python benchmarks/bench_fleet_scaling.py --smoke

which runs a small population through serial + fleet(cold) +
fleet(warm), checks byte-equivalence, nonzero cache writes on the cold
pass, and all-hits on the warm pass, and prints the numbers as JSON.
"""

from __future__ import annotations

import tempfile
import time

from repro.core.fingerprint import fingerprint_households
from repro.fleet import FleetSpec, run_fleet
from repro.inspector.generate import generate_dataset

#: The full §6.3 population used by the pytest benches.
FULL = dict(seed=23, households=3860, target_devices=12669)

#: Worker widths swept by the cold-cache scaling bench.
WIDTHS = (2, 4, 8)


def _serial_report(spec_kwargs):
    dataset = generate_dataset(**spec_kwargs)
    return fingerprint_households(dataset=dataset)


def bench_fleet_serial_baseline(benchmark, stage_timings):
    """The serial reference path over the full population."""
    started = time.perf_counter()
    report = benchmark.pedantic(_serial_report, args=(FULL,),
                                rounds=1, iterations=1)
    stage_timings["fleet_serial_baseline"] = time.perf_counter() - started
    assert report.dataset_households == FULL["households"]


def bench_fleet_workers_1(benchmark, stage_timings):
    """Sharded but inline (workers=1): the orchestration overhead."""
    spec = FleetSpec(**FULL)
    started = time.perf_counter()
    result = benchmark.pedantic(run_fleet, args=(spec,),
                                kwargs={"workers": 1}, rounds=1, iterations=1)
    stage_timings["fleet_workers_1"] = time.perf_counter() - started
    assert result.report.to_json() == _serial_report(FULL).to_json()


def bench_fleet_workers_scaling(benchmark, stage_timings):
    """Cold-cache process fan-out at 2/4/8 workers, all byte-checked."""
    spec = FleetSpec(**FULL)
    serial_json = _serial_report(FULL).to_json()

    def sweep():
        out = {}
        for workers in WIDTHS:
            started = time.perf_counter()
            result = run_fleet(spec, workers=workers)
            out[workers] = time.perf_counter() - started
            assert result.report.to_json() == serial_json, workers
        return out

    seconds = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for workers, elapsed in seconds.items():
        stage_timings[f"fleet_workers_{workers}"] = elapsed
        print(f"\nfleet workers={workers}: {elapsed:.2f}s")


def bench_fleet_warm_cache(benchmark, stage_timings):
    """Every shard served from the content-addressed cache."""
    spec = FleetSpec(**FULL)
    with tempfile.TemporaryDirectory(prefix="fleet-bench-") as cache_dir:
        cold = run_fleet(spec, workers=1, cache_dir=cache_dir)
        assert cold.cache_writes == len(spec.shards())

        started = time.perf_counter()
        warm = benchmark.pedantic(run_fleet, args=(spec,),
                                  kwargs={"workers": 1, "cache_dir": cache_dir},
                                  rounds=1, iterations=1)
        stage_timings["fleet_warm_cache"] = time.perf_counter() - started
        assert warm.cache_hits == len(spec.shards())
        assert warm.cache_misses == 0
        assert warm.report.to_json() == cold.report.to_json()


# -- standalone smoke mode (CI fleet gate) -----------------------------------------


def run_smoke(households: int = 400, seed: int = 23, workers: int = 2) -> dict:
    """Small-population smoke: equivalence + cache behaviour.

    Returns the measured numbers; raises ``SystemExit`` on any breach
    of the fleet's contracts (byte-equivalence, cold writes, warm hits).
    """
    spec_kwargs = dict(seed=seed, households=households,
                       target_devices=max(1, round(households * 12669 / 3860)))
    spec = FleetSpec(**spec_kwargs)
    shard_count = len(spec.shards())

    started = time.perf_counter()
    serial_json = _serial_report(spec_kwargs).to_json()
    serial_seconds = time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="fleet-smoke-") as cache_dir:
        started = time.perf_counter()
        cold = run_fleet(spec, workers=workers, cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm = run_fleet(spec, workers=workers, cache_dir=cache_dir)
        warm_seconds = time.perf_counter() - started

    results = {
        "households": households,
        "shards": shard_count,
        "workers": cold.workers,
        "serial_seconds": serial_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_cache_writes": cold.cache_writes,
        "warm_cache_hits": warm.cache_hits,
        "bytes_identical_cold": cold.report.to_json() == serial_json,
        "bytes_identical_warm": warm.report.to_json() == serial_json,
    }
    if not results["bytes_identical_cold"]:
        raise SystemExit("fleet cold run diverged from the serial report")
    if not results["bytes_identical_warm"]:
        raise SystemExit("fleet warm run diverged from the serial report")
    if cold.cache_writes != shard_count:
        raise SystemExit(
            f"cold run wrote {cold.cache_writes} cache entries, "
            f"expected {shard_count}")
    if warm.cache_hits != shard_count or warm.cache_misses != 0:
        raise SystemExit(
            f"warm run hit {warm.cache_hits}/{shard_count} shards "
            f"({warm.cache_misses} misses); cache is not serving")
    return results


if __name__ == "__main__":
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI fleet smoke and print JSON")
    parser.add_argument("--households", type=int, default=400,
                        help="population size for the smoke run")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the smoke run")
    options = parser.parse_args()
    if not options.smoke:
        parser.error("standalone mode requires --smoke (benches run via pytest)")
    print(json.dumps(run_smoke(households=options.households,
                               workers=options.workers), indent=2))
