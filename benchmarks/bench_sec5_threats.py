"""§5: the threat analysis rollup.

Paper: 33 devices use plaintext HTTP (26 clients only, 5 servers); 32
devices use TLS locally; Google certs last 20 years with 64-122-bit
keys on 8009 (SWEET32); Amazon self-signed 3-month IP-CN certs with
mutual auth; Apple TLS 1.3; HomePod Mini runs SheerDNS 1.0.0 (cache
snooping); Microseven serves jQuery 1.2 + unauthenticated ONVIF;
Lefun exposes backup files; 9 devices run deprecated UPnP 1.0.
"""

from repro.core.threat_report import build_threat_report
from repro.report.tables import render_comparison
from repro.scan.vulnscan import VulnerabilityScanner


def bench_sec5_threats(benchmark, lab_run, lab_index):
    testbed, packets, maps = lab_run

    def build():
        findings = VulnerabilityScanner().scan(testbed.devices)
        return build_threat_report(lab_index, maps["macs"], findings)

    report = benchmark.pedantic(build, rounds=1, iterations=1)
    identifiers_by_device = {}
    for finding in report.findings:
        identifiers_by_device.setdefault(finding.device, set()).add(finding.identifier)

    def has(device, identifier):
        return "yes" if identifier in identifiers_by_device.get(device, set()) else "NO"

    upnp10 = sum(1 for ids in identifiers_by_device.values() if "UPNP-1.0-DEPRECATED" in ids)
    tls13 = sum(1 for posture in report.tls_devices.values() if "1.3" in posture.versions)
    short_certs = sum(
        1 for posture in report.tls_devices.values()
        if posture.certificates and posture.min_cert_validity_years < 0.5
    )
    long_certs = sum(
        1 for posture in report.tls_devices.values()
        if posture.certificates and posture.max_cert_validity_years > 15
    )
    print()
    print(render_comparison([
        ("plaintext HTTP devices", 33, len(report.plaintext_http_devices)),
        ("HTTP clients only", 26, len(report.http_clients_only)),
        ("local TLS devices", 32, report.tls_device_count),
        ("devices with TLS 1.3 (Apple)", 4, tls13),
        ("devices with ~3-month certs (Amazon)", "Echo fleet", short_certs),
        ("devices with 20y+ certs (Google)", "Google fleet", long_certs),
        ("devices on deprecated UPnP 1.0", 9, upnp10),
        ("HomePod Mini SheerDNS finding", "yes", has("apple-homepod-mini-1", "NESSUS-11535")),
        ("WeMo DNS cache snooping", "yes", has("wemo-plug-1", "NESSUS-12217")),
        ("Microseven ONVIF snapshot", "yes", has("microseven-camera-1", "ONVIF-UNAUTH-SNAPSHOT")),
        ("Microseven jQuery 1.2 XSS", "yes", has("microseven-camera-1", "CVE-2020-11022")),
        ("Lefun backup exposure", "yes", has("lefun-camera-1", "HTTP-BACKUP-EXPOSURE")),
        ("Google SWEET32 on 8009", "yes", has("google-nest-hub-5", "CVE-2016-2183")),
        ("Roku IGD exposure", "yes", has("roku-tv-1", "SSDP-IGD-EXPOSURE")),
        ("TPLINK-SHP unauthenticated control", "yes", has("tplink-1", "TPLINK-SHP-NOAUTH")),
        ("total findings", "-", len(report.findings)),
    ], title="§5 threats — paper vs measured"))
    assert report.tls_device_count >= 20
    assert upnp10 >= 7
    assert has("microseven-camera-1", "ONVIF-UNAUTH-SNAPSHOT") == "yes"
