"""Table 1: information exposure per discovery protocol.

Paper's checkmarks — ARP: MAC.  DHCP: MAC, model, OS version, display
name, outdated SW.  mDNS: MAC, model, display name, UUIDs.  SSDP: MAC,
model, OS version, UUIDs, outdated SW.  TuyaLP: GW id, product key.
TPLINK: MAC, model, OEM id, geolocation, outdated SW.
"""

from repro.core.exposure import EXPOSURE_TYPES, analyze_exposure
from repro.report.tables import render_comparison, render_table1

#: The Table 1 ground truth (paper checkmarks).
PAPER_TABLE1 = {
    "ARP": {"MAC"},
    "DHCP": {"MAC", "Device/Model", "OS Version", "Display name", "Outdated OS/SW"},
    "mDNS": {"MAC", "Device/Model", "Display name", "UUIDs"},
    "SSDP": {"MAC", "Device/Model", "OS Version", "UUIDs", "Outdated OS/SW"},
    "TuyaLP": {"GW id", "Prod. Key"},
    "TPLINK": {"MAC", "Device/Model", "OEM id", "Geolocation", "Outdated OS/SW"},
}


def bench_table1_exposure(benchmark, lab_run, lab_index):
    testbed, packets, maps = lab_run
    matrix = benchmark.pedantic(
        analyze_exposure, args=(lab_index, maps["macs"]), rounds=1, iterations=1
    )
    print()
    print(render_table1(matrix))
    agreements = []
    cells_total = cells_match = 0
    for protocol, expected in PAPER_TABLE1.items():
        measured = set(matrix.exposed_types(protocol))
        for identifier in EXPOSURE_TYPES:
            cells_total += 1
            if (identifier in expected) == (identifier in measured):
                cells_match += 1
        agreements.append((protocol, ", ".join(sorted(expected)), ", ".join(sorted(measured))))
    print()
    print(render_comparison(agreements, title="Table 1 — paper vs measured exposure sets"))
    print(f"cell agreement: {cells_match}/{cells_total}")
    assert cells_match / cells_total > 0.85
