"""§7 mitigations, evaluated (extension beyond the paper's discussion).

Re-runs the Table 2 fingerprinting analysis after applying each
proposed mitigation to the crowdsourced corpus's payloads.
"""

from repro.core.mitigations import evaluate_mitigations
from repro.report.tables import render_table


def bench_sec7_mitigations(benchmark, inspector_dataset):
    outcomes = benchmark.pedantic(
        evaluate_mitigations, kwargs={"dataset": inspector_dataset},
        rounds=1, iterations=1,
    )
    rows = []
    for outcome in outcomes:
        exposure_rows = {
            row.identifiers: row.households for row in outcome.report.rows if row.type_count
        }
        rows.append((
            outcome.name,
            f"{outcome.max_entropy():.1f}",
            outcome.uniquely_identifiable_households(),
            ", ".join(f"{k}({v})" for k, v in sorted(exposure_rows.items())),
        ))
    print()
    print(render_table(
        ["mitigation", "max entropy (bits)", "uniquely identifiable households",
         "exposure rows (households)"],
        rows,
        title="§7 mitigations — fingerprintability after each countermeasure",
    ))
    by_name = {outcome.name: outcome for outcome in outcomes}
    assert by_name["mac_randomization"].report.row_for("mac") is None
    assert by_name["name_minimization"].report.row_for("name") is None
    assert (by_name["strip_identifiers"].max_entropy()
            < by_name["baseline"].max_entropy())
