"""Monitor steady-state: throughput and the bounded-memory guarantee.

The tentpole claim of :mod:`repro.monitor`, measured directly: a
windowed monitor must sustain its packets/second while its memory stays
**flat as the input grows** — the sliding window evicts whole panes, so
absorbing 10× the traffic through the same window must not grow the
Python-allocation peak by more than :data:`PEAK_RATIO_MAX`.  Throughput
is the primary ``packets_per_second`` metric of ``BENCH_monitor.json``;
the 1× vs 10× tracemalloc peaks are recorded alongside it (tracemalloc
because it deterministically counts Python allocations — process RSS
is allocator-noise on inputs this small, and still lands in the
trajectory's ``rss_peak_bytes`` column via ``tools/bench_record.py``).

Also runnable standalone as the CI monitor smoke::

    PYTHONPATH=src python benchmarks/bench_monitor.py --smoke

which additionally pins the equivalence contract: a full-window monitor
over the same records must serialize byte-identically to the batch
analyses.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.devices.behaviors import build_testbed
from repro.monitor import Monitor

#: The 10× input may grow the windowed monitor's allocation peak by at
#: most this factor over the 1× input (the bounded-memory acceptance
#: gate; the window itself is identical in both runs).
PEAK_RATIO_MAX = 1.10


def _capture_records(seed: int, duration: float):
    testbed = build_testbed(seed=seed)
    testbed.run(duration)
    return list(testbed.lan.capture.records)


def _replicate(records, times: int):
    """Concatenate ``times`` copies, shifting timestamps so the stream
    stays chronological (the columnar store requires capture order)."""
    if not records:
        return []
    span = records[-1][0] - records[0][0] + 1.0
    out = []
    for i in range(times):
        offset = i * span
        out.extend((timestamp + offset, data)
                   for timestamp, data in records)
    return out


def _run_windowed(records, window_packets: int, chunk_records: int):
    """Absorb ``records`` through a windowed monitor; returns
    (seconds, tracemalloc_peak_bytes, monitor)."""
    monitor = Monitor(window_packets=window_packets)
    chunks = [records[start:start + chunk_records]
              for start in range(0, len(records), chunk_records)]
    tracemalloc.start()
    started = time.perf_counter()
    for chunk in chunks:
        monitor.absorb_chunk(chunk)
    seconds = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return seconds, peak, monitor


def run_smoke(duration: float = 60.0, seed: int = 7,
              growth: int = 10) -> dict:
    """The CI smoke: throughput + flat-memory + batch equivalence."""
    base = _capture_records(seed, duration)
    if not base:
        raise RuntimeError("capture produced no records")
    # The 1× stream must already overflow the window, so the 10× run
    # only adds evictions — never a bigger window.
    window_packets = max(256, len(base) // 3)
    chunk_records = max(128, window_packets // 4)

    seconds_1x, peak_1x, _ = _run_windowed(base, window_packets,
                                           chunk_records)
    grown = _replicate(base, growth)
    seconds_10x, peak_10x, monitor = _run_windowed(grown, window_packets,
                                                   chunk_records)
    assert monitor.packets_seen == len(grown)
    assert monitor.window.evicted_panes > 0, "10x run never evicted"
    peak_ratio = peak_10x / peak_1x
    assert peak_ratio <= PEAK_RATIO_MAX, (
        f"monitor peak allocations grew {peak_ratio:.2f}x on {growth}x "
        f"input (limit {PEAK_RATIO_MAX}x): the window is not bounding "
        "memory")

    _check_batch_equivalence(base)

    return {
        "packets": len(grown),
        "seconds": seconds_10x,
        "packets_per_second": len(grown) / seconds_10x,
        "seconds_1x": seconds_1x,
        "window_packets": window_packets,
        "chunk_records": chunk_records,
        "tracemalloc_peak_1x": peak_1x,
        "tracemalloc_peak_10x": peak_10x,
        "peak_ratio": peak_ratio,
        "evicted_panes": monitor.window.evicted_panes,
    }


def _check_batch_equivalence(records) -> None:
    """A full-window monitor must equal the batch artifacts, byte for
    byte — the same contract ``tests/monitor`` pins, re-asserted here
    so a perf refactor cannot silently trade correctness for speed."""
    from repro.core.device_graph import build_device_graph
    from repro.core.exposure import analyze_exposure
    from repro.core.periodicity import analyze_periodicity
    from repro.core.protocol_census import census_from_capture
    from repro.net.columnar import PacketTable
    from repro.net.decode import DecodeErrorLog
    from repro.net.index import CaptureIndex
    from repro.report.artifacts import (
        canonical_json,
        census_artifact,
        device_graph_artifact,
        exposure_artifact,
        periodicity_artifact,
    )

    table = PacketTable()
    table.extend_records(records, DecodeErrorLog())
    index = CaptureIndex(table)
    identity = {mac: mac for mac in index.by_src_mac}
    batch = {
        "census": census_artifact(census_from_capture(index, identity)),
        "device_graph": device_graph_artifact(
            build_device_graph(index, identity, {})),
        "exposure": exposure_artifact(analyze_exposure(index, identity)),
        "periodicity": periodicity_artifact(
            analyze_periodicity(index, identity)),
    }
    monitor = Monitor()
    for start in range(0, len(records), 1024):
        monitor.absorb_chunk(records[start:start + 1024])
    snapshot = monitor.snapshot()
    for name, expected in batch.items():
        got = canonical_json(snapshot["artifacts"][name])
        assert got == canonical_json(expected), (
            f"monitor {name} diverged from the batch artifact")


# -- pytest-bench entry points ------------------------------------------------------


def bench_monitor_steady_state(benchmark, stage_timings):
    """Windowed absorb throughput + flat-memory gate, one pass."""
    started = time.perf_counter()
    results = benchmark.pedantic(run_smoke, rounds=1, iterations=1)
    stage_timings["monitor_steady_state"] = time.perf_counter() - started
    assert results["peak_ratio"] <= PEAK_RATIO_MAX


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI smoke and print JSON numbers")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated capture seconds (default 60)")
    options = parser.parse_args(argv)
    if not options.smoke:
        parser.error("use --smoke (pytest runs the bench entry points)")
    results = run_smoke(duration=options.duration)
    print(json.dumps(results, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
