"""§5.1: DHCP option/hostname/client-version census.

Paper: 86 devices request 30 different option types (incl. deprecated
SMTP Server / Name Server / Root Path); hostnames identified for 67% of
devices; 16 unique DHCP client versions from 40% of devices; 37 devices
use old or custom clients.
"""

from repro.core.discovery_census import dhcp_census, mdns_service_census
from repro.report.tables import render_comparison, render_table


def bench_sec51_dhcp(benchmark, lab_run):
    testbed, packets, maps = lab_run
    census = benchmark.pedantic(
        dhcp_census, args=(packets, maps["macs"]), rounds=1, iterations=1
    )
    total = len(testbed.devices)
    print()
    print(render_comparison([
        ("devices requesting DHCP options", 86, len(census.requesting_devices)),
        ("distinct option types requested", 30, len(census.requested_options)),
        ("devices requesting deprecated options", "present", len(census.deprecated_requesters)),
        ("devices with identified hostnames", "67%",
         f"{census.hostname_fraction(total):.0%}"),
        ("unique DHCP client versions", 16, len(census.unique_client_versions)),
        ("devices sending a client version", "40%",
         f"{census.version_fraction(total):.0%}"),
        ("old/custom DHCP clients", 37, len(census.old_or_custom_clients())),
    ], title="§5.1 DHCP — paper vs measured"))

    services = mdns_service_census(packets, maps["macs"])
    rows = [(family, len(devices)) for family, devices in sorted(services.by_family.items())]
    print()
    print(render_table(["mDNS service family", "devices revealing it"], rows,
                       title="§5.1 mDNS service families"))
    assert len(census.requesting_devices) == 86
    assert len(census.unique_client_versions) == 16
    assert len(census.old_or_custom_clients()) == 37
