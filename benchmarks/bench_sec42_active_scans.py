"""§4.2: the active-scan census.

Paper: 54 devices responded to TCP SYN scans, 20 to UDP, 58 to
IP-protocol scans; 61 devices have open ports; 178 unique open TCP and
115 unique open UDP ports; nmap labels needed manual correction (§3.5).
"""

from repro.report.tables import render_comparison


def bench_sec42_active_scans(benchmark, scan_report):
    def summarize():
        return {
            "open_devices": scan_report.devices_with_open_ports,
            "tcp_responders": scan_report.tcp_responders,
            "udp_responders": scan_report.udp_responders,
            "ip_proto_responders": scan_report.ip_proto_responders,
            "unique_tcp": len(scan_report.unique_open_ports("tcp")),
            "unique_udp": len(scan_report.unique_open_ports("udp")),
            "corrected": scan_report.corrected_count(),
        }

    summary = benchmark(summarize)
    print()
    print(render_comparison([
        ("devices with open ports", 61, summary["open_devices"]),
        ("TCP SYN scan responders", 54, summary["tcp_responders"]),
        ("UDP scan responders", 20, summary["udp_responders"]),
        ("IP-protocol scan responders", 58, summary["ip_proto_responders"]),
        ("unique open TCP ports", 178, summary["unique_tcp"]),
        ("unique open UDP ports", 115, summary["unique_udp"]),
        ("nmap labels manually corrected", "many (§3.5)", summary["corrected"]),
    ], title="§4.2 active scans — paper vs measured"))
    assert 55 <= summary["open_devices"] <= 70
    assert summary["udp_responders"] == 20
    assert summary["unique_tcp"] > 100
    assert summary["corrected"] > 0
