"""Table 5: payloads exposing device information.

Verifies the codecs regenerate the paper's example payload shapes: the
Amcrest SSDP description with MAC-as-serialNumber, the Philips Hue mDNS
name with the embedded MAC, the NetBIOS ``CKAAA...`` wildcard probe,
and the TPLINK-SHP sysinfo with plaintext lat/lon.
"""

from repro.core.exposure import payload_examples
from repro.report.tables import render_comparison


def bench_table5_payloads(benchmark):
    examples = benchmark(payload_examples)
    checks = [
        ("SSDP serialNumber is the MAC", "9c:8e:cd:0a:33:1b",
         "present" if "9c:8e:cd:0a:33:1b" in examples["SSDP"] else "MISSING"),
        ("SSDP UDN embeds friendly name", "device_3_0-AMC020SC43PJ749D66",
         "present" if "AMC020SC43PJ749D66" in examples["SSDP"] else "MISSING"),
        ("mDNS instance embeds MAC suffix", "Philips Hue - 685F61",
         "present" if "Philips Hue - 685F61" in examples["mDNS"] else "MISSING"),
        ("NetBIOS wildcard is CK+30A", "CKAAAA...",
         "present" if "434b4141" in examples["NetBIOS"].replace(" ", "") else "MISSING"),
        ("TPLINK deviceId", "8006E8E9017F55...",
         "present" if "8006E8E9017F556D283C850B4E29BC1F185334E5" in examples["TPLINK-SHP"] else "MISSING"),
        ("TPLINK plaintext latitude", "42.337681",
         "present" if "42.337681" in examples["TPLINK-SHP"] else "MISSING"),
        ("TPLINK plaintext longitude", "-71.087036",
         "present" if "-71.087036" in examples["TPLINK-SHP"] else "MISSING"),
    ]
    print()
    print(render_comparison(checks, title="Table 5 — payload anchors"))
    for example in examples.values():
        print("-" * 60)
        print(example[:400])
    assert all(measured != "MISSING" for _, _, measured in checks)
