"""Shared benchmark fixtures: heavy artifacts built once per session.

The lab run compresses the paper's multi-day capture into 40 simulated
minutes (every periodic behaviour fires many times; daily behaviours
fire once early).  Each bench prints the paper's reported value next to
the measured one via :func:`repro.report.tables.render_comparison`.

Every heavy stage (testbed build, passive run, decode, scan sweep, app
runs, inspector dataset) is wall-clock timed into ``STAGE_TIMINGS``;
when pytest-benchmark writes a JSON report (``--benchmark-json``), the
timings are attached under ``stage_timings`` so the perf trajectory is
stage-resolved, not a single end-to-end number.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict

import pytest

from repro.apps.dataset import generate_app_dataset
from repro.apps.runtime import InstrumentedPhone
from repro.core.responses import category_of_profile
from repro.devices.behaviors import build_testbed
from repro.net.index import CaptureIndex
from repro.scan.portscan import PortScanner

PASSIVE_DURATION = 2400.0  # simulated seconds

#: Wall-clock seconds per fixture stage, attached to the bench JSON.
STAGE_TIMINGS: Dict[str, float] = {}


@contextmanager
def _timed_stage(name: str):
    started = time.perf_counter()
    try:
        yield
    finally:
        STAGE_TIMINGS[name] = STAGE_TIMINGS.get(name, 0.0) + (
            time.perf_counter() - started
        )


@pytest.fixture(scope="session")
def lab_run():
    """(testbed, decoded_packets, device_maps) after the passive phase."""
    with _timed_stage("testbed_build"):
        testbed = build_testbed(seed=7)
    with _timed_stage("passive_run"):
        testbed.run(PASSIVE_DURATION)
    with _timed_stage("capture_decode"):
        packets = testbed.lan.capture.decoded()
    maps = {
        "macs": {str(node.mac): node.name for node in testbed.devices},
        "vendors": {node.name: node.vendor for node in testbed.devices},
        "categories": {node.name: category_of_profile(node.profile) for node in testbed.devices},
    }
    return testbed, packets, maps


@pytest.fixture(scope="session")
def lab_index(lab_run):
    """The decode-once :class:`CaptureIndex` shared by analysis benches."""
    testbed, _, _ = lab_run
    with _timed_stage("capture_index"):
        index = testbed.lan.capture.index()
        index.ensure_labels()
    return index


@pytest.fixture(scope="session")
def stage_timings():
    """The mutable stage-timings dict, for benches that add their own."""
    return STAGE_TIMINGS


@pytest.fixture(scope="session")
def scan_report(lab_run):
    testbed, _, _ = lab_run
    scanner = PortScanner()
    testbed.lan.attach(scanner)
    keep = testbed.lan.capture.keep_bytes
    testbed.lan.capture.keep_bytes = False
    try:
        with _timed_stage("scan_sweep"):
            report = scanner.sweep(targets=testbed.devices)
    finally:
        testbed.lan.capture.keep_bytes = keep
        testbed.lan.detach(scanner)
    return report


@pytest.fixture(scope="session")
def app_runs(lab_run):
    """All 2,335 apps executed on the instrumented phone."""
    testbed, _, _ = lab_run
    apps = generate_app_dataset(seed=11)
    phone = InstrumentedPhone()
    testbed.lan.attach(phone)
    keep = testbed.lan.capture.keep_bytes
    testbed.lan.capture.keep_bytes = False
    try:
        with _timed_stage("app_runs"):
            results = [phone.run_app(app) for app in apps]
    finally:
        testbed.lan.capture.keep_bytes = keep
        testbed.lan.detach(phone)
    return results


@pytest.fixture(scope="session")
def inspector_dataset():
    from repro.inspector.generate import generate_dataset

    with _timed_stage("inspector_dataset"):
        return generate_dataset(seed=23)


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Attach stage timings, resource stats and the env fingerprint.

    The fingerprint is the same one ``tools/bench_record.py`` stamps
    into ``BENCH_*.json`` entries, so pytest-benchmark reports and
    trajectory entries are joinable on identical machine/code state.
    ``resource_stats`` carries the session's ``rss_peak_bytes`` /
    ``cpu_seconds`` (from :func:`repro.obs.events.process_stats`) — the
    same columns the trajectory's memory gate watches.
    """
    from repro.obs.bench import env_fingerprint
    from repro.obs.events import process_stats

    output_json["stage_timings"] = dict(sorted(STAGE_TIMINGS.items()))
    output_json["env_fingerprint"] = env_fingerprint()
    stats = process_stats()
    output_json["resource_stats"] = {
        "rss_peak_bytes": stats["rss_peak_bytes"],
        "cpu_seconds": stats["cpu_seconds"],
    }
