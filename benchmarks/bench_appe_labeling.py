"""Appendix E: device-identity inference over crowdsourced metadata.

Paper: 25,033 devices with >=2 metadata pieces fed to an LLM; 24,998
(99.9%) received non-empty vendor/category labels.  Our offline rule
cascade is evaluated against the generator's ground truth.
"""

from repro.inspector.labels import DeviceLabeler
from repro.report.tables import render_comparison


def bench_appe_labeling(benchmark, inspector_dataset):
    labeler = DeviceLabeler.from_dataset(inspector_dataset)
    metrics = benchmark.pedantic(
        labeler.evaluate, args=(inspector_dataset,), rounds=1, iterations=1
    )
    print()
    print(render_comparison([
        ("devices labeled (vendor) %", "99.9% (24,998/25,033)",
         f"{metrics['vendor_labeled']:.1%}"),
        ("vendor accuracy vs ground truth", "n/a (no ground truth in paper)",
         f"{metrics['vendor_accuracy']:.1%}"),
        ("category labeled %", "-", f"{metrics['category_labeled']:.1%}"),
        ("category accuracy", "-", f"{metrics['category_accuracy']:.1%}"),
    ], title="Appendix E — device identity inference"))
    assert metrics["vendor_labeled"] > 0.95
    assert metrics["vendor_accuracy"] > 0.8
