"""Figure 3 / Appendix C.2: tshark vs nDPI cross-validation heatmap.

Paper: tshark labels 76% of flows (35 labels), nDPI 74% (18 labels);
different labels for 16%; neither for 7.5%; 95% of disagreements are
tshark-generic/TPLINK vs nDPI-SSDP; nDPI artifacts: CiscoVPN for some
SSDP, AmazonAWS for Nintendo EAPOL.
"""

from repro.classify.crossval import cross_validate
from repro.report.tables import render_comparison, render_figure3


def bench_fig3_crossval(benchmark, lab_run, lab_index):
    testbed, packets, maps = lab_run
    result = benchmark.pedantic(cross_validate, args=(lab_index,), rounds=1, iterations=1)
    print()
    print(render_figure3(result))
    disagreements = {
        pair: count for pair, count in result.confusion.items()
        if pair[0] != pair[1] and "UNDETECTED" not in pair
    }
    total = sum(disagreements.values()) or 1
    ssdp_share = (
        disagreements.get(("UNKNOWN", "SSDP"), 0)
        + disagreements.get(("TPLINK_SHP", "SSDP"), 0)
    ) / total
    print()
    print(render_comparison([
        ("tshark coverage %", 76, round(100 * result.tshark_coverage)),
        ("nDPI coverage %", 74, round(100 * result.ndpi_coverage)),
        ("disagreement %", 16, round(100 * result.disagree_fraction)),
        ("neither labels %", 7.5, round(100 * result.neither_fraction, 1)),
        ("tshark label count", 35, result.tshark_label_count),
        ("nDPI label count", 18, result.ndpi_label_count),
        ("share of disagreements = tshark-generic/TPLINK vs nDPI-SSDP",
         "95%", f"{ssdp_share:.0%}"),
    ], title="Figure 3 anchors — paper vs measured"))
    assert result.disagree_fraction > 0.05
    assert ssdp_share > 0.5
