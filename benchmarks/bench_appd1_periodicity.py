"""Appendix D.1: periodicity of discovery traffic (DFT + autocorrelation).

Paper: 88% of discovery-protocol flows are periodic; 580 periodic
(destination, protocol) groups across the devices, ~6.2 per device.
Paper intervals: Google SSDP every 20 s, mDNS every 20-100 s, Echo SSDP
every 2-3 h, Echo Lifx broadcast every 2 h.
"""

from collections import Counter

from repro.core.periodicity import analyze_periodicity
from repro.report.tables import render_comparison, render_table


def bench_appd1_periodicity(benchmark, lab_run, lab_index):
    testbed, packets, maps = lab_run
    result = benchmark.pedantic(
        analyze_periodicity, args=(lab_index, maps["macs"]), rounds=1, iterations=1
    )
    all_traffic = analyze_periodicity(lab_index, maps["macs"], discovery_only=False)
    periods = Counter()
    for detection in result.periodic_groups:
        if detection.period:
            periods[round(detection.period)] += 1
    print()
    print(render_comparison([
        ("periodic fraction of discovery flows", "88%",
         f"{result.periodic_fraction:.0%}"),
        ("periodic (dst, proto) groups — discovery only", "-",
         len(result.periodic_groups)),
        ("periodic groups — all protocols", 580, len(all_traffic.periodic_groups)),
        ("periodic groups per device — all protocols", 6.2,
         round(all_traffic.groups_per_device(), 1)),
    ], title="Appendix D.1 — paper vs measured"))
    print()
    print(render_table(
        ["period (s)", "groups"],
        sorted(periods.items())[:15],
        title="Detected periods (time-compressed lab)",
    ))
    # The configured discovery cadences must be recovered.
    detected = set(periods)
    assert any(18 <= period <= 22 for period in detected)  # Google SSDP 20 s
    assert result.periodic_fraction > 0.6
