"""Table 3: the testbed inventory (93 devices, 78 models, 7 categories)."""

from collections import Counter

from repro.devices.catalog import TESTBED_CATEGORY_COUNTS, build_catalog
from repro.report.tables import render_comparison, render_table3


def bench_table3_inventory(benchmark):
    catalog = benchmark(build_catalog)
    print()
    print(render_table3(catalog))
    counts = Counter(profile.category for profile in catalog)
    rows = [("total devices", 93, len(catalog)),
            ("unique models", 78, len({(p.vendor, p.model) for p in catalog}))]
    for category, expected in sorted(TESTBED_CATEGORY_COUNTS.items()):
        rows.append((category, expected, counts[category]))
    print()
    print(render_comparison(rows, title="Table 3 — paper vs measured"))
    assert len(catalog) == 93
    assert dict(counts) == TESTBED_CATEGORY_COUNTS
