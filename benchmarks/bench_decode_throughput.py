"""Decode throughput: columnar ingest vs materialized decode.

The tentpole perf claim of the columnar capture store, measured
directly: how many packets/second the store sustains on a cold
ingest+index scan (the primary ``packets_per_second`` metric — what the
pipeline pays before analyses start), on a raw columnar ingest
(``columnar_packets_per_second``), and when the backlog materializes to
full ``DecodedPacket`` objects serially, via the thread pool in
order-preserving chunks, or from the memoized cache.  Timings land in
``STAGE_TIMINGS`` (attached to the bench JSON under ``stage_timings``)
so the decode trajectory is tracked next to the pipeline stages.

Also runnable standalone as the CI perf smoke::

    PYTHONPATH=src python benchmarks/bench_decode_throughput.py --smoke
    PYTHONPATH=src python benchmarks/bench_decode_throughput.py --smoke --profile

which builds a small capture, checks that the cached path is not slower
than the cold path and that parallel chunking is byte-identical to the
serial decode, and prints the numbers as JSON.  ``--profile`` adds the
profiler overhead gate: the same decode with a
:class:`repro.obs.profile.SamplingProfiler` running must stay within
:data:`DEFAULT_PROFILE_OVERHEAD_MAX` (override via
``REPRO_PROFILE_OVERHEAD_MAX``) of the unprofiled time, and the sampled
flamegraph must actually contain decode-path frames.
"""

from __future__ import annotations

import time

from repro.simnet.capture import ApCapture

#: Force-parallel knobs used by the chunked measurements: threshold 1
#: always takes the pool path, modest chunks exercise the chunking.
PARALLEL_KWARGS = dict(parallel_threshold=1, decode_chunk_size=2048)


def _feed(capture: ApCapture, records) -> ApCapture:
    for timestamp, data in records:
        capture.observe(timestamp, data)
    return capture


def _decode_rate(capture: ApCapture) -> float:
    started = time.perf_counter()
    packets = capture.decoded()
    elapsed = time.perf_counter() - started
    return len(packets) / elapsed if elapsed > 0 else float("inf")


def bench_decode_serial_cold(benchmark, lab_run, stage_timings):
    """Cold serial decode of the full lab capture."""
    testbed, _, _ = lab_run
    records = list(testbed.lan.capture.records)

    def cold():
        return _feed(ApCapture(parallel_threshold=0), records).decoded()

    started = time.perf_counter()
    packets = benchmark.pedantic(cold, rounds=1, iterations=1)
    stage_timings["decode_serial_cold"] = time.perf_counter() - started
    print(f"\nserial cold: {len(packets)} packets")
    assert len(packets) == len(records)


def bench_decode_parallel_cold(benchmark, lab_run, stage_timings):
    """Cold chunked-parallel decode; must reproduce capture order."""
    testbed, packets_ref, _ = lab_run
    records = list(testbed.lan.capture.records)

    def cold():
        return _feed(ApCapture(**PARALLEL_KWARGS), records).decoded()

    started = time.perf_counter()
    packets = benchmark.pedantic(cold, rounds=1, iterations=1)
    stage_timings["decode_parallel_cold"] = time.perf_counter() - started
    assert len(packets) == len(records)
    # Order preservation: chunk concatenation is the capture order.
    assert [p.timestamp for p in packets] == [p.timestamp for p in packets_ref]


def bench_decode_cached(benchmark, lab_run, stage_timings):
    """The memoized path: every call after the first is a cache hit."""
    testbed, _, _ = lab_run
    capture = testbed.lan.capture
    first = capture.decoded()

    started = time.perf_counter()
    again = benchmark.pedantic(capture.decoded, rounds=1, iterations=1)
    stage_timings["decode_cached"] = time.perf_counter() - started
    assert again is first  # same list object, zero re-decode


def bench_columnar_index_cold(benchmark, lab_run, stage_timings):
    """Cold columnar ingest + zero-copy index build (the primary metric)."""
    testbed, _, _ = lab_run
    records = list(testbed.lan.capture.records)

    def cold():
        return _feed(ApCapture(parallel_threshold=0), records).index()

    started = time.perf_counter()
    index = benchmark.pedantic(cold, rounds=1, iterations=1)
    stage_timings["columnar_index_cold"] = time.perf_counter() - started
    assert len(index) == len(records)


def bench_capture_index_cached(benchmark, lab_run, lab_index, stage_timings):
    """Index retrieval after the session fixture built it: cache hit."""
    testbed, _, _ = lab_run

    started = time.perf_counter()
    index = benchmark.pedantic(testbed.lan.capture.index, rounds=1, iterations=1)
    stage_timings["capture_index_cached"] = time.perf_counter() - started
    assert index is lab_index


# -- standalone smoke mode (CI perf gate) ------------------------------------------


def run_smoke(duration: float = 300.0, seed: int = 7) -> dict:
    """Small-capture smoke: columnar vs materialized decode contracts.

    Measures the tentpole legs — cold columnar ingest+index scan (the
    ``packets_per_second`` primary metric), raw columnar ingest
    (``columnar_packets_per_second``), full materialization, cached
    re-read, parallel materialization — and gates the invariants: the
    cached path returns the identical list, parallel chunking preserves
    capture order, and the columnar index is equivalent to an eager
    per-packet decode.  Returns the measured numbers; raises
    ``SystemExit`` on regression.
    """
    from repro.devices.behaviors import build_testbed
    from repro.net.columnar import PacketTable
    from repro.net.decode import decode_records
    from repro.net.index import CaptureIndex

    testbed = build_testbed(seed=seed)
    testbed.run(duration)
    records = list(testbed.lan.capture.records)

    # Raw columnar ingest: one pass building every column + the arena.
    started = time.perf_counter()
    table = PacketTable.from_records(records)
    columnar_seconds = time.perf_counter() - started

    # The primary metric: cold ingest + zero-copy index build — what the
    # pipeline actually pays before the analyses start scanning.
    cold_capture = _feed(ApCapture(parallel_threshold=0), records)
    started = time.perf_counter()
    cold_index = cold_capture.index()
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cold_packets = cold_capture.decoded()
    materialize_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cached_packets = cold_capture.decoded()
    cached_seconds = time.perf_counter() - started

    parallel_capture = _feed(ApCapture(**PARALLEL_KWARGS), records)
    started = time.perf_counter()
    parallel_packets = parallel_capture.decoded()
    parallel_seconds = time.perf_counter() - started

    # Equivalence gate: the columnar fast path must agree with an eager
    # per-packet decode, bucket for bucket.
    eager_index = CaptureIndex(decode_records(records))
    equivalence_ok = (
        len(table) == len(records)
        and cold_index.protocol_counts() == eager_index.protocol_counts()
        and {mac: len(view) for mac, view in cold_index.by_src_mac.items()}
        == {mac: len(view) for mac, view in eager_index.by_src_mac.items()}
        and len(cold_index.arp) == len(eager_index.arp)
        and len(cold_index.udp) == len(eager_index.udp)
        and len(cold_index.tcp_payload) == len(eager_index.tcp_payload)
        and len(cold_index.transport_unicast) == len(eager_index.transport_unicast)
        and len(cold_index.transport_multicast) == len(eager_index.transport_multicast)
    )

    results = {
        "packets": len(records),
        "columnar_seconds": columnar_seconds,
        "cold_seconds": cold_seconds,
        "materialize_seconds": materialize_seconds,
        "cached_seconds": cached_seconds,
        "parallel_seconds": parallel_seconds,
        "cold_pps": len(records) / cold_seconds if cold_seconds else None,
        "columnar_pps": (
            len(records) / columnar_seconds if columnar_seconds else None
        ),
        "cached_not_slower": cached_seconds <= cold_seconds,
        "parallel_order_ok": (
            [p.timestamp for p in parallel_packets]
            == [p.timestamp for p in cold_packets]
        ),
        "equivalence_ok": equivalence_ok,
    }
    if cached_packets is not cold_packets:
        raise SystemExit("decode cache returned a different object on re-read")
    if not results["parallel_order_ok"]:
        raise SystemExit("parallel chunked decode broke capture order")
    if not results["equivalence_ok"]:
        raise SystemExit(
            "columnar index diverged from the eager per-packet decode")
    if not results["cached_not_slower"]:
        raise SystemExit(
            f"cached decode slower than cold index scan "
            f"({cached_seconds:.6f}s > {cold_seconds:.6f}s)"
        )
    return results


#: Allowed profiled-vs-plain decode slowdown (10%) — the overhead
#: contract of ``repro.obs.profile``; REPRO_PROFILE_OVERHEAD_MAX
#: overrides it for noisy CI machines.
DEFAULT_PROFILE_OVERHEAD_MAX = 0.10


def run_profile_smoke(duration: float = 900.0, seed: int = 7,
                      repeats: int = 5) -> dict:
    """Profiler overhead gate: sampled decode vs plain decode.

    Decodes the same capture under a running
    :class:`~repro.obs.profile.SamplingProfiler` (with the
    :class:`~repro.obs.profile.SpanResourceProbe` installed, i.e. the
    full ``--profile-out`` configuration) and plain, **interleaved**
    plain/profiled ``repeats`` times so container noise (CI neighbours,
    thermal drift) hits both sides alike; compares best-of times and
    checks the sampled flamegraph contains decode frames.  Returns the
    numbers; raises ``SystemExit`` on a broken contract.
    """
    import os

    from repro.devices.behaviors import build_testbed
    from repro.obs import enable_observability, use_obs
    from repro.obs.profile import SamplingProfiler, SpanResourceProbe

    testbed = build_testbed(seed=seed)
    testbed.run(duration)
    records = list(testbed.lan.capture.records)

    def decode_once():
        return _feed(ApCapture(parallel_threshold=0), records).decoded()

    profiler = SamplingProfiler()
    obs = enable_observability(profiler=profiler)
    obs.tracer.resource_probe = SpanResourceProbe()

    def profiled_once():
        with use_obs(obs), obs.tracer.span("decode"):
            return decode_once()

    decode_once()  # warm-up: caches and allocator state, untimed

    def timed(fn) -> float:
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started

    plain_seconds = profiled_seconds = float("inf")
    for _ in range(repeats):
        plain_seconds = min(plain_seconds, timed(decode_once))
        # The sampler runs only while the profiled side is timed;
        # start/stop stay outside the clock (a CLI run pays them
        # once, not per decode).
        profiler.start()
        try:
            profiled_seconds = min(profiled_seconds, timed(profiled_once))
        finally:
            profiler.stop()

    flame = profiler.profile.to_collapsed()
    overhead = (profiled_seconds / plain_seconds - 1.0) if plain_seconds else 0.0
    limit = float(os.environ.get("REPRO_PROFILE_OVERHEAD_MAX",
                                 DEFAULT_PROFILE_OVERHEAD_MAX))
    results = {
        "packets": len(records),
        "plain_seconds": plain_seconds,
        "profiled_seconds": profiled_seconds,
        "overhead": overhead,
        "overhead_limit": limit,
        "profile_samples": profiler.profile.total_samples,
        "decode_frames_sampled": "repro/net/decode.py" in flame,
    }
    if not results["decode_frames_sampled"]:
        raise SystemExit(
            "profiled decode produced no decode-path samples "
            f"({results['profile_samples']} samples total) — "
            "span attribution or the sampler thread is broken")
    if overhead > limit:
        raise SystemExit(
            f"profiler overhead {overhead:.1%} exceeds the {limit:.0%} "
            f"contract ({profiled_seconds:.4f}s profiled vs "
            f"{plain_seconds:.4f}s plain)")
    return results


if __name__ == "__main__":
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI perf smoke and print JSON")
    parser.add_argument("--profile", action="store_true",
                        help="also gate the sampling-profiler overhead "
                             "contract (<10% decode slowdown)")
    parser.add_argument("--duration", type=float, default=300.0,
                        help="simulated seconds of capture to decode")
    options = parser.parse_args()
    if not options.smoke:
        parser.error("standalone mode requires --smoke (benches run via pytest)")
    results = run_smoke(duration=options.duration)
    if options.profile:
        results["profile"] = run_profile_smoke(duration=options.duration)
    print(json.dumps(results, indent=2))
