"""Decode throughput: serial vs chunked-parallel, cold vs cached.

The tentpole perf claim of the decode-once capture layer, measured
directly: how many packets/second the frame decoder sustains when the
backlog is decoded serially, when it fans out over the thread pool in
order-preserving chunks, and when the memoized cache answers instead of
re-decoding.  Timings land in ``STAGE_TIMINGS`` (attached to the bench
JSON under ``stage_timings``) so the decode trajectory is tracked next
to the pipeline stages.

Also runnable standalone as the CI perf smoke::

    PYTHONPATH=src python benchmarks/bench_decode_throughput.py --smoke

which builds a small capture, checks that the cached path is not slower
than the cold path and that parallel chunking is byte-identical to the
serial decode, and prints the numbers as JSON.
"""

from __future__ import annotations

import time

from repro.simnet.capture import ApCapture

#: Force-parallel knobs used by the chunked measurements: threshold 1
#: always takes the pool path, modest chunks exercise the chunking.
PARALLEL_KWARGS = dict(parallel_threshold=1, decode_chunk_size=2048)


def _feed(capture: ApCapture, records) -> ApCapture:
    for timestamp, data in records:
        capture.observe(timestamp, data)
    return capture


def _decode_rate(capture: ApCapture) -> float:
    started = time.perf_counter()
    packets = capture.decoded()
    elapsed = time.perf_counter() - started
    return len(packets) / elapsed if elapsed > 0 else float("inf")


def bench_decode_serial_cold(benchmark, lab_run, stage_timings):
    """Cold serial decode of the full lab capture."""
    testbed, _, _ = lab_run
    records = list(testbed.lan.capture.records)

    def cold():
        return _feed(ApCapture(parallel_threshold=0), records).decoded()

    started = time.perf_counter()
    packets = benchmark.pedantic(cold, rounds=1, iterations=1)
    stage_timings["decode_serial_cold"] = time.perf_counter() - started
    print(f"\nserial cold: {len(packets)} packets")
    assert len(packets) == len(records)


def bench_decode_parallel_cold(benchmark, lab_run, stage_timings):
    """Cold chunked-parallel decode; must reproduce capture order."""
    testbed, packets_ref, _ = lab_run
    records = list(testbed.lan.capture.records)

    def cold():
        return _feed(ApCapture(**PARALLEL_KWARGS), records).decoded()

    started = time.perf_counter()
    packets = benchmark.pedantic(cold, rounds=1, iterations=1)
    stage_timings["decode_parallel_cold"] = time.perf_counter() - started
    assert len(packets) == len(records)
    # Order preservation: chunk concatenation is the capture order.
    assert [p.timestamp for p in packets] == [p.timestamp for p in packets_ref]


def bench_decode_cached(benchmark, lab_run, stage_timings):
    """The memoized path: every call after the first is a cache hit."""
    testbed, _, _ = lab_run
    capture = testbed.lan.capture
    first = capture.decoded()

    started = time.perf_counter()
    again = benchmark.pedantic(capture.decoded, rounds=1, iterations=1)
    stage_timings["decode_cached"] = time.perf_counter() - started
    assert again is first  # same list object, zero re-decode


def bench_capture_index_cached(benchmark, lab_run, lab_index, stage_timings):
    """Index retrieval after the session fixture built it: cache hit."""
    testbed, _, _ = lab_run

    started = time.perf_counter()
    index = benchmark.pedantic(testbed.lan.capture.index, rounds=1, iterations=1)
    stage_timings["capture_index_cached"] = time.perf_counter() - started
    assert index is lab_index


# -- standalone smoke mode (CI perf gate) ------------------------------------------


def run_smoke(duration: float = 300.0, seed: int = 7) -> dict:
    """Small-capture smoke: cached decode must not be slower than cold.

    Returns the measured numbers; raises ``SystemExit`` on regression.
    """
    from repro.devices.behaviors import build_testbed

    testbed = build_testbed(seed=seed)
    testbed.run(duration)
    records = list(testbed.lan.capture.records)

    cold_capture = _feed(ApCapture(parallel_threshold=0), records)
    started = time.perf_counter()
    cold_packets = cold_capture.decoded()
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cached_packets = cold_capture.decoded()
    cached_seconds = time.perf_counter() - started

    parallel_capture = _feed(ApCapture(**PARALLEL_KWARGS), records)
    started = time.perf_counter()
    parallel_packets = parallel_capture.decoded()
    parallel_seconds = time.perf_counter() - started

    results = {
        "packets": len(records),
        "cold_seconds": cold_seconds,
        "cached_seconds": cached_seconds,
        "parallel_seconds": parallel_seconds,
        "cold_pps": len(records) / cold_seconds if cold_seconds else None,
        "cached_not_slower": cached_seconds <= cold_seconds,
        "parallel_order_ok": (
            [p.timestamp for p in parallel_packets]
            == [p.timestamp for p in cold_packets]
        ),
    }
    if cached_packets is not cold_packets:
        raise SystemExit("decode cache returned a different object on re-read")
    if not results["parallel_order_ok"]:
        raise SystemExit("parallel chunked decode broke capture order")
    if not results["cached_not_slower"]:
        raise SystemExit(
            f"cached decode slower than cold decode "
            f"({cached_seconds:.6f}s > {cold_seconds:.6f}s)"
        )
    return results


if __name__ == "__main__":
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI perf smoke and print JSON")
    parser.add_argument("--duration", type=float, default=300.0,
                        help="simulated seconds of capture to decode")
    options = parser.parse_args()
    if not options.smoke:
        parser.error("standalone mode requires --smoke (benches run via pytest)")
    print(json.dumps(run_smoke(duration=options.duration), indent=2))
