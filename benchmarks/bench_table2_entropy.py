"""Table 2: household fingerprintability from mDNS/SSDP identifiers.

Paper rows — #0: 154 products / 4,175 devices / 1,811 households expose
nothing.  #1: UUID 2,814 households (94.2% unique, ent 8.9), MAC 572
(94.4%, 7.8), name 2 (50%, 3.4).  #2: UUID+MAC 1,182 (95.6%, 16.7),
name+UUID 22 (81.8%, 12.3).  #3: one product (Roku TV), 2 households,
100%, 20.1.
"""

from repro.core.fingerprint import fingerprint_households
from repro.report.tables import render_comparison, render_table2


def bench_table2_entropy(benchmark, inspector_dataset):
    report = benchmark.pedantic(
        fingerprint_households, kwargs={"dataset": inspector_dataset},
        rounds=1, iterations=1,
    )
    print()
    print(render_table2(report))
    uuid_row = report.row_for("uuid")
    mac_row = report.row_for("mac")
    combo_row = report.row_for("mac, uuid")
    all_row = report.row_for("mac, name, uuid")
    rows = [
        ("dataset devices", 12669, report.dataset_devices),
        ("dataset households", 3860, report.dataset_households),
        ("vendors", 165, report.dataset_vendors),
        ("products", 264, report.dataset_products),
        ("median devices/household", 3, report.median_devices_per_household),
        ("UUID-only households", 2814, uuid_row.households if uuid_row else 0),
        ("UUID uniqueness %", 94.2, round(uuid_row.unique_pct, 1) if uuid_row else 0),
        ("MAC-only households", 572, mac_row.households if mac_row else 0),
        ("MAC uniqueness %", 94.4, round(mac_row.unique_pct, 1) if mac_row else 0),
        ("UUID+MAC households", 1182, combo_row.households if combo_row else 0),
        ("UUID+MAC uniqueness %", 95.6, round(combo_row.unique_pct, 1) if combo_row else 0),
        ("all-three households (Roku TV)", 2, all_row.households if all_row else 0),
    ]
    print()
    print(render_comparison(rows, title="Table 2 anchors — paper vs measured"))
    assert uuid_row is not None and uuid_row.unique_pct > 85
    assert all_row is not None and all_row.households <= 6
