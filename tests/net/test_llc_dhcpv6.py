"""Tests for the LLC/XID codec and DHCPv6."""

import pytest

from repro.net.decode import decode_frame
from repro.net.ether import EtherType, EthernetFrame
from repro.net.llc import LlcFrame, xid_broadcast_frame
from repro.protocols.dhcpv6 import (
    Dhcpv6Message,
    Dhcpv6MessageType,
    Dhcpv6Option,
    duid_ll,
    mac_from_duid,
)


class TestLlc:
    def test_xid_roundtrip(self):
        frame = LlcFrame.xid_probe()
        decoded = LlcFrame.decode(frame.encode())
        assert decoded.is_xid
        assert decoded.information == bytes([0x81, 0x01, 0x00])

    def test_broadcast_frame_classified_as_llc(self):
        raw = xid_broadcast_frame("98:b6:e9:01:02:03")
        packet = decode_frame(raw)
        assert packet.frame.kind is EtherType.LLC
        assert packet.frame.is_broadcast

    def test_classifiers_label_xid(self):
        from repro.classify.labels import Label
        from repro.classify.ndpi_like import NdpiLikeClassifier
        from repro.classify.tshark_like import TsharkLikeClassifier

        packet = decode_frame(xid_broadcast_frame("8c:71:f8:01:02:03"))
        assert TsharkLikeClassifier().classify_packet(packet) is Label.XID_LLC
        assert NdpiLikeClassifier().classify_packet(packet) is Label.XID_LLC

    def test_truncated(self):
        with pytest.raises(ValueError):
            LlcFrame.decode(b"\x00")

    def test_non_xid_control(self):
        frame = LlcFrame(0xAA, 0xAA, 0x03, b"snap")  # UI frame
        assert not LlcFrame.decode(frame.encode()).is_xid


class TestDhcpv6:
    def test_solicit_roundtrip(self):
        message = Dhcpv6Message.solicit("50:c7:bf:01:02:03", 0xABCDEF, fqdn="plug.local")
        decoded = Dhcpv6Message.decode(message.encode())
        assert decoded.message_type is Dhcpv6MessageType.SOLICIT
        assert decoded.transaction_id == 0xABCDEF
        assert decoded.fqdn == "plug.local"

    def test_duid_ll_embeds_mac(self):
        duid = duid_ll("50:c7:bf:01:02:03")
        assert str(mac_from_duid(duid)) == "50:c7:bf:01:02:03"

    def test_duid_llt_recovery(self):
        import struct

        duid = struct.pack("!HHI", 1, 1, 12345) + bytes.fromhex("50c7bf010203")
        assert str(mac_from_duid(duid)) == "50:c7:bf:01:02:03"

    def test_duid_other_hardware_rejected(self):
        import struct

        duid = struct.pack("!HH", 3, 6) + b"\x00" * 6  # IEEE 802 hw type
        assert mac_from_duid(duid) is None

    def test_client_mac_property(self):
        message = Dhcpv6Message.solicit("50:c7:bf:01:02:03", 1)
        decoded = Dhcpv6Message.decode(message.encode())
        assert str(decoded.client_mac) == "50:c7:bf:01:02:03"

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            Dhcpv6Message.decode(b"\xf0\x00\x00\x01")

    def test_truncated_option(self):
        message = Dhcpv6Message.solicit("50:c7:bf:01:02:03", 1)
        with pytest.raises(ValueError):
            Dhcpv6Message.decode(message.encode()[:-3])

    def test_ndpi_detects(self):
        from repro.classify.labels import Label
        from repro.classify.ndpi_like import NdpiLikeClassifier
        from repro.net.ipv6 import Ipv6Packet
        from repro.net.udp import UdpDatagram

        message = Dhcpv6Message.solicit("50:c7:bf:01:02:03", 1)
        datagram = UdpDatagram(546, 547, message.encode())
        packet6 = Ipv6Packet("fe80::1", "ff02::1:2", 17, datagram.encode())
        frame = EthernetFrame("33:33:00:01:00:02", "50:c7:bf:01:02:03",
                              EtherType.IPV6, packet6.encode())
        decoded = decode_frame(frame.encode())
        assert NdpiLikeClassifier().classify_packet(decoded) is Label.DHCPV6


class TestBootEmission:
    def test_tvs_emit_xid(self, mini_capture):
        testbed, packets = mini_capture
        xid_senders = {
            str(p.frame.src) for p in packets if p.frame.kind is EtherType.LLC
        }
        tv_macs = {str(n.mac) for n in testbed.devices if n.profile.category == "Media/TV"}
        assert xid_senders & tv_macs

    def test_ipv6_devices_solicit_dhcpv6(self, mini_capture):
        testbed, packets = mini_capture
        solicits = [
            p for p in packets
            if p.ipv6 is not None and p.udp is not None and p.udp.dst_port == 547
        ]
        assert solicits
        # The DUID leaks the sender's MAC.
        message = Dhcpv6Message.decode(solicits[0].udp.payload)
        assert str(message.client_mac) == str(solicits[0].frame.src)
