"""Unit tests for the MAC address type."""

import pytest

from repro.net.mac import (
    BROADCAST_MAC,
    MDNS_V4_MAC,
    SSDP_V4_MAC,
    MacAddress,
    ipv4_multicast_mac,
    ipv6_multicast_mac,
)


class TestParsing:
    def test_colon_separated(self):
        mac = MacAddress("9c:8e:cd:0a:33:1b")
        assert str(mac) == "9c:8e:cd:0a:33:1b"

    def test_dash_separated(self):
        assert str(MacAddress("9C-8E-CD-0A-33-1B")) == "9c:8e:cd:0a:33:1b"

    def test_bare_hex(self):
        assert str(MacAddress("9c8ecd0a331b")) == "9c:8e:cd:0a:33:1b"

    def test_from_bytes(self):
        assert str(MacAddress(b"\x9c\x8e\xcd\x0a\x33\x1b")) == "9c:8e:cd:0a:33:1b"

    def test_from_int(self):
        assert str(MacAddress(0x9C8ECD0A331B)) == "9c:8e:cd:0a:33:1b"

    def test_from_mac(self):
        original = MacAddress("9c:8e:cd:0a:33:1b")
        assert MacAddress(original) == original

    @pytest.mark.parametrize(
        "bad",
        ["", "9c:8e:cd", "zz:zz:zz:zz:zz:zz", "9c:8e:cd:0a:33:1b:ff", "9c8ecd0a331"],
    )
    def test_invalid_strings(self, bad):
        with pytest.raises(ValueError):
            MacAddress(bad)

    def test_wrong_byte_length(self):
        with pytest.raises(ValueError):
            MacAddress(b"\x01\x02\x03")

    def test_int_out_of_range(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)

    def test_wrong_type(self):
        with pytest.raises(TypeError):
            MacAddress(3.14)


class TestProperties:
    def test_oui_and_suffix(self):
        mac = MacAddress("00:17:88:68:5f:61")
        assert mac.oui == "00:17:88"
        assert mac.nic_suffix == "68:5f:61"

    def test_broadcast(self):
        assert BROADCAST_MAC.is_broadcast
        assert BROADCAST_MAC.is_multicast
        assert not MacAddress("00:17:88:68:5f:61").is_broadcast

    def test_multicast_ig_bit(self):
        assert MacAddress("01:00:5e:00:00:fb").is_multicast
        assert MacAddress("00:17:88:68:5f:61").is_unicast

    def test_locally_administered(self):
        assert MacAddress("02:00:00:00:00:01").is_locally_administered
        assert not MacAddress("00:17:88:68:5f:61").is_locally_administered

    def test_compact(self):
        assert MacAddress("9c:8e:cd:0a:33:1b").compact() == "9c8ecd0a331b"

    def test_packed_roundtrip(self):
        mac = MacAddress("9c:8e:cd:0a:33:1b")
        assert MacAddress(mac.packed) == mac

    def test_int_roundtrip(self):
        mac = MacAddress("9c:8e:cd:0a:33:1b")
        assert MacAddress(int(mac)) == mac


class TestComparison:
    def test_equality_with_string(self):
        assert MacAddress("9c:8e:cd:0a:33:1b") == "9C:8E:CD:0A:33:1B"

    def test_equality_with_bad_string(self):
        assert not MacAddress("9c:8e:cd:0a:33:1b") == "not-a-mac"

    def test_ordering(self):
        assert MacAddress("00:00:00:00:00:01") < MacAddress("00:00:00:00:00:02")

    def test_hashable(self):
        macs = {MacAddress("9c:8e:cd:0a:33:1b"), MacAddress("9c8ecd0a331b")}
        assert len(macs) == 1


class TestMulticastMapping:
    def test_mdns_group(self):
        assert ipv4_multicast_mac("224.0.0.251") == MDNS_V4_MAC

    def test_ssdp_group(self):
        assert ipv4_multicast_mac("239.255.255.250") == SSDP_V4_MAC

    def test_low_23_bits_only(self):
        # 239.255.x and 238.127.x map to the same MAC (RFC 1112 ambiguity)
        assert ipv4_multicast_mac("239.255.255.250") == ipv4_multicast_mac("238.127.255.250")

    def test_non_multicast_rejected(self):
        with pytest.raises(ValueError):
            ipv4_multicast_mac("192.168.1.1")

    def test_ipv6_mapping(self):
        assert str(ipv6_multicast_mac("ff02::fb")) == "33:33:00:00:00:fb"

    def test_ipv6_non_multicast_rejected(self):
        with pytest.raises(ValueError):
            ipv6_multicast_mac("fe80::1")
