"""Unit tests for pcap I/O, flow assembly, the local filter, and OUIs."""

import random

import pytest

from repro.net.decode import decode_frame
from repro.net.ether import EthernetFrame, EtherType
from repro.net.filters import LocalTrafficFilter, is_private_conversation
from repro.net.flows import FlowKey, FlowTable, assemble_flows, flow_key_of
from repro.net.ipv4 import IpProtocol, Ipv4Packet
from repro.net.mac import BROADCAST_MAC, MacAddress
from repro.net.oui import DEFAULT_OUI_REGISTRY, OuiRegistry
from repro.net.pcap import PcapReader, PcapWriter, read_pcap, write_pcap
from repro.net.udp import UdpDatagram


def _udp_frame(src_mac, dst_mac, src_ip, dst_ip, sport, dport, payload=b"x"):
    datagram = UdpDatagram(sport, dport, payload)
    packet = Ipv4Packet(src_ip, dst_ip, IpProtocol.UDP, datagram.encode())
    return EthernetFrame(dst_mac, src_mac, EtherType.IPV4, packet.encode()).encode()


class TestPcap:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "capture.pcap"
        frames = [(1.0, b"\x00" * 20), (2.5, b"\x01" * 64), (3.000001, b"\x02" * 1400)]
        assert write_pcap(path, frames) == 3
        packets = read_pcap(path)
        assert [p.length for p in packets] == [20, 64, 1400]
        assert abs(packets[2].timestamp - 3.000001) < 1e-6

    def test_header_fields(self, tmp_path):
        path = tmp_path / "capture.pcap"
        write_pcap(path, [(0.0, b"abc")])
        with PcapReader(path) as reader:
            assert reader.version == (2, 4)
            assert reader.linktype == 1  # Ethernet
            assert reader.snaplen == 65535

    def test_snaplen_truncation(self, tmp_path):
        path = tmp_path / "capture.pcap"
        with PcapWriter(path, snaplen=16) as writer:
            writer.write(0.0, b"\xaa" * 100)
        packets = read_pcap(path)
        assert packets[0].length == 16

    def test_rejects_non_pcap(self, tmp_path):
        path = tmp_path / "bogus.pcap"
        path.write_bytes(b"not a pcap file at all....")
        with pytest.raises(ValueError):
            PcapReader(path)

    def test_rejects_short_file(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1")
        with pytest.raises(ValueError):
            PcapReader(path)

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        write_pcap(path, [(0.0, b"\x00" * 40)])
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(ValueError):
            with PcapReader(path) as reader:
                list(reader)

    def test_byte_swapped_magic(self, tmp_path):
        path = tmp_path / "swapped.pcap"
        write_pcap(path, [(1.0, b"xyz")])
        data = bytearray(path.read_bytes())
        # Rewrite global header and record header big-endian.
        import struct

        magic, vmaj, vmin, tz, sig, snap, link = struct.unpack("<IHHiIII", data[:24])
        head = struct.pack(">IHHiIII", magic, vmaj, vmin, tz, sig, snap, link)
        ts_sec, ts_usec, incl, orig = struct.unpack("<IIII", data[24:40])
        record = struct.pack(">IIII", ts_sec, ts_usec, incl, orig)
        path.write_bytes(head + record + bytes(data[40:]))
        packets = read_pcap(path)
        assert packets[0].data == b"xyz"


class TestFlows:
    def test_five_tuple_grouping(self):
        frames = [
            _udp_frame("02:00:00:00:00:01", "02:00:00:00:00:02",
                       "192.168.10.1", "192.168.10.2", 5000, 80),
            _udp_frame("02:00:00:00:00:01", "02:00:00:00:00:02",
                       "192.168.10.1", "192.168.10.2", 5000, 80),
            _udp_frame("02:00:00:00:00:02", "02:00:00:00:00:01",
                       "192.168.10.2", "192.168.10.1", 80, 5000),
        ]
        table = assemble_flows(decode_frame(f, i * 1.0) for i, f in enumerate(frames))
        assert len(table) == 2  # two directed flows
        forward = table.get(FlowKey("192.168.10.1", 5000, "192.168.10.2", 80, "udp"))
        assert forward.packet_count == 2

    def test_bidirectional_grouping(self):
        frames = [
            _udp_frame("02:00:00:00:00:01", "02:00:00:00:00:02",
                       "192.168.10.1", "192.168.10.2", 5000, 80),
            _udp_frame("02:00:00:00:00:02", "02:00:00:00:00:01",
                       "192.168.10.2", "192.168.10.1", 80, 5000),
        ]
        table = assemble_flows(decode_frame(f) for f in frames)
        conversations = table.bidirectional_flows()
        assert len(conversations) == 1
        assert len(next(iter(conversations.values()))) == 2

    def test_non_transport_packets_separated(self):
        from repro.net.arp import ArpOp, ArpPacket

        arp = ArpPacket(ArpOp.REQUEST, "02:00:00:00:00:01", "192.168.10.1",
                        "00:00:00:00:00:00", "192.168.10.2")
        frame = EthernetFrame(BROADCAST_MAC, "02:00:00:00:00:01", EtherType.ARP, arp.encode())
        table = assemble_flows([decode_frame(frame.encode())])
        assert len(table) == 0
        assert len(table.non_flow_packets) == 1

    def test_flow_statistics(self):
        frames = [
            _udp_frame("02:00:00:00:00:01", "02:00:00:00:00:02",
                       "192.168.10.1", "192.168.10.2", 5000, 80, payload=b"hello"),
            _udp_frame("02:00:00:00:00:01", "02:00:00:00:00:02",
                       "192.168.10.1", "192.168.10.2", 5000, 80, payload=b"world"),
        ]
        table = assemble_flows(decode_frame(f, ts) for ts, f in zip((1.0, 4.0), frames))
        flow = table.flows[0]
        assert flow.duration == 3.0
        assert flow.payload == b"helloworld"
        assert flow.first_payload_packet() is flow.packets[0]
        assert flow.byte_count > 0

    def test_flow_key_reversal(self):
        key = FlowKey("a", 1, "b", 2, "udp")
        assert key.reversed() == FlowKey("b", 2, "a", 1, "udp")
        assert key.bidirectional() == key.reversed().bidirectional()

    def test_flow_key_of_non_ip(self):
        frame = EthernetFrame(BROADCAST_MAC, "02:00:00:00:00:01", EtherType.EAPOL, b"")
        assert flow_key_of(decode_frame(frame.encode())) is None


class TestLocalFilter:
    def _packet(self, src_ip, dst_ip, dst_mac="02:00:00:00:00:02"):
        return decode_frame(
            _udp_frame("02:00:00:00:00:01", dst_mac, src_ip, dst_ip, 1000, 2000)
        )

    def test_local_unicast_kept(self):
        traffic_filter = LocalTrafficFilter("192.168.10.0/24")
        assert traffic_filter.matches(self._packet("192.168.10.1", "192.168.10.2"))

    def test_wan_traffic_dropped(self):
        traffic_filter = LocalTrafficFilter("192.168.10.0/24")
        assert not traffic_filter.matches(self._packet("192.168.10.1", "142.250.1.1"))

    def test_cross_subnet_private_dropped(self):
        # Private but outside the configured /24: not local for clause 1.
        traffic_filter = LocalTrafficFilter("192.168.10.0/24")
        assert not traffic_filter.matches(self._packet("192.168.10.1", "192.168.99.7"))

    def test_multicast_always_kept(self):
        traffic_filter = LocalTrafficFilter("192.168.10.0/24")
        packet = self._packet("192.168.10.1", "224.0.0.251", dst_mac="01:00:5e:00:00:fb")
        assert traffic_filter.matches(packet)

    def test_non_ip_unicast_kept(self):
        traffic_filter = LocalTrafficFilter()
        frame = EthernetFrame("02:00:00:00:00:02", "02:00:00:00:00:01", EtherType.EAPOL, b"")
        assert traffic_filter.matches(decode_frame(frame.encode()))

    def test_apply_filters_list(self):
        traffic_filter = LocalTrafficFilter("192.168.10.0/24")
        packets = [
            self._packet("192.168.10.1", "192.168.10.2"),
            self._packet("192.168.10.1", "8.8.8.8"),
        ]
        assert len(traffic_filter.apply(packets)) == 1

    def test_private_conversation_helper(self):
        assert is_private_conversation("192.168.1.5", "10.0.0.9")
        assert not is_private_conversation("192.168.1.5", "8.8.8.8")
        assert not is_private_conversation("bogus", "10.0.0.9")


class TestOuiRegistry:
    def test_known_vendor_lookup(self):
        assert DEFAULT_OUI_REGISTRY.vendor_of("00:17:88:68:5f:61") == "Philips"
        assert DEFAULT_OUI_REGISTRY.vendor_of("9c:8e:cd:0a:33:1b") == "Amcrest"

    def test_oui_string_lookup(self):
        assert DEFAULT_OUI_REGISTRY.vendor_of("00:17:88") == "Philips"

    def test_unknown_returns_none(self):
        assert DEFAULT_OUI_REGISTRY.vendor_of("ff:ee:dd:01:02:03") is None

    def test_allocation_respects_oui(self):
        rng = random.Random(5)
        mac = DEFAULT_OUI_REGISTRY.allocate_mac("Philips", rng)
        assert mac.oui == "00:17:88"
        assert DEFAULT_OUI_REGISTRY.vendor_of(mac) == "Philips"

    def test_allocation_unknown_vendor_is_local(self):
        rng = random.Random(5)
        mac = DEFAULT_OUI_REGISTRY.allocate_mac("NoSuchVendor", rng)
        assert mac.is_locally_administered

    def test_register_new(self):
        registry = OuiRegistry({})
        registry.register("TestVendor", "aa:bb:cc")
        assert registry.vendor_of("aa:bb:cc:01:02:03") == "TestVendor"
        assert registry.ouis_of("TestVendor") == ["aa:bb:cc"]

    def test_allocation_deterministic(self):
        a = DEFAULT_OUI_REGISTRY.allocate_mac("Google", random.Random(9))
        b = DEFAULT_OUI_REGISTRY.allocate_mac("Google", random.Random(9))
        assert a == b
