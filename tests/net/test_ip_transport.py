"""Unit tests for IPv4/IPv6/UDP/TCP/ICMP codecs and checksums."""

import pytest

from repro.net.icmp import IcmpMessage, IcmpType, Icmpv6Message, Icmpv6Type
from repro.net.ipv4 import (
    IpProtocol,
    Ipv4Packet,
    internet_checksum,
    pseudo_header_checksum,
)
from repro.net.ipv6 import Ipv6Packet, link_local_from_mac
from repro.net.tcp import TcpFlags, TcpSegment
from repro.net.udp import UdpDatagram


class TestChecksum:
    def test_rfc1071_example(self):
        # Canonical example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verifies_to_zero(self):
        packet = Ipv4Packet("192.168.10.1", "192.168.10.2", IpProtocol.UDP, b"x")
        header = packet.encode()[:20]
        assert internet_checksum(header) == 0


class TestIpv4:
    def test_roundtrip(self):
        packet = Ipv4Packet("192.168.10.5", "192.168.10.60", IpProtocol.TCP, b"payload", ttl=32)
        decoded = Ipv4Packet.decode(packet.encode())
        assert decoded.src == "192.168.10.5"
        assert decoded.dst == "192.168.10.60"
        assert decoded.protocol == IpProtocol.TCP
        assert decoded.payload == b"payload"
        assert decoded.ttl == 32

    def test_checksum_verification(self):
        raw = bytearray(Ipv4Packet("10.0.0.1", "10.0.0.2", 17, b"x").encode())
        Ipv4Packet.decode(bytes(raw), verify_checksum=True)
        raw[8] ^= 0xFF  # corrupt the TTL
        with pytest.raises(ValueError):
            Ipv4Packet.decode(bytes(raw), verify_checksum=True)

    def test_multicast_and_local_flags(self):
        assert Ipv4Packet("192.168.10.5", "224.0.0.251", 17).is_multicast
        assert Ipv4Packet("192.168.10.5", "192.168.10.60", 17).is_local
        assert not Ipv4Packet("192.168.10.5", "8.8.8.8", 17).is_local

    def test_rejects_ipv6_bytes(self):
        v6 = Ipv6Packet("fe80::1", "fe80::2", 17, b"")
        with pytest.raises(ValueError):
            Ipv4Packet.decode(v6.encode())

    def test_truncated(self):
        with pytest.raises(ValueError):
            Ipv4Packet.decode(b"\x45\x00")

    def test_protocol_name(self):
        assert IpProtocol.name_of(6) == "TCP"
        assert IpProtocol.name_of(99) == "IPPROTO_99"


class TestIpv6:
    def test_roundtrip(self):
        packet = Ipv6Packet("fe80::1", "ff02::fb", IpProtocol.UDP, b"abc", hop_limit=255)
        decoded = Ipv6Packet.decode(packet.encode())
        assert decoded.src == "fe80::1"
        assert decoded.dst == "ff02::fb"
        assert decoded.payload == b"abc"
        assert decoded.hop_limit == 255

    def test_multicast_flag(self):
        assert Ipv6Packet("fe80::1", "ff02::fb", 17).is_multicast
        assert not Ipv6Packet("fe80::1", "fe80::2", 17).is_multicast

    def test_rejects_ipv4_bytes(self):
        v4 = Ipv4Packet("10.0.0.1", "10.0.0.2", 17, b"")
        with pytest.raises(ValueError):
            Ipv6Packet.decode(v4.encode())

    def test_link_local_from_mac_embeds_mac(self):
        # SLAAC EUI-64: the MAC is recoverable from the address (§5.1's
        # identifier leak).
        address = link_local_from_mac("00:17:88:68:5f:61")
        assert address.startswith("fe80::")
        assert "ff:fe" in address or "fffe" in address.replace(":", "")

    def test_link_local_flips_universal_bit(self):
        address = link_local_from_mac("00:17:88:68:5f:61")
        assert "217" in address  # 0x00 ^ 0x02 = 0x02 -> "217:88ff:..."


class TestUdp:
    def test_roundtrip_no_checksum(self):
        datagram = UdpDatagram(5353, 5353, b"query")
        decoded = UdpDatagram.decode(datagram.encode())
        assert decoded.src_port == 5353 and decoded.payload == b"query"

    def test_checksum_with_pseudo_header(self):
        datagram = UdpDatagram(1900, 50000, b"NOTIFY")
        wire = datagram.encode("192.168.10.5", "192.168.10.60")
        # verify: checksum over pseudo-header + segment (with checksum
        # field included) must be 0
        assert pseudo_header_checksum("192.168.10.5", "192.168.10.60", 17, wire) == 0

    def test_length_field_truncates_payload(self):
        datagram = UdpDatagram(1, 2, b"abcdef")
        wire = bytearray(datagram.encode())
        wire[4:6] = (8 + 3).to_bytes(2, "big")  # claim only 3 payload bytes
        assert UdpDatagram.decode(bytes(wire)).payload == b"abc"

    def test_invalid_port(self):
        with pytest.raises(ValueError):
            UdpDatagram(70000, 1, b"")

    def test_bad_length_field(self):
        with pytest.raises(ValueError):
            UdpDatagram.decode(b"\x00\x01\x00\x02\x00\x03\x00\x00")


class TestTcp:
    def test_roundtrip(self):
        segment = TcpSegment(49152, 80, seq=100, ack=200,
                             flags=TcpFlags.ACK | TcpFlags.PSH, payload=b"GET /")
        decoded = TcpSegment.decode(segment.encode())
        assert decoded.src_port == 49152
        assert decoded.seq == 100 and decoded.ack == 200
        assert decoded.flags & TcpFlags.PSH
        assert decoded.payload == b"GET /"

    def test_flag_predicates(self):
        assert TcpSegment(1, 2, flags=TcpFlags.SYN).is_syn
        assert TcpSegment(1, 2, flags=TcpFlags.SYN | TcpFlags.ACK).is_synack
        assert not TcpSegment(1, 2, flags=TcpFlags.SYN | TcpFlags.ACK).is_syn
        assert TcpSegment(1, 2, flags=TcpFlags.RST).is_rst

    def test_checksummed_encode(self):
        segment = TcpSegment(49152, 80, flags=TcpFlags.SYN)
        wire = segment.encode("192.168.10.5", "192.168.10.60")
        assert pseudo_header_checksum("192.168.10.5", "192.168.10.60", 6, wire) == 0

    def test_sequence_wraparound(self):
        segment = TcpSegment(1, 2, seq=2**32 + 5)
        assert TcpSegment.decode(segment.encode()).seq == 5

    def test_truncated(self):
        with pytest.raises(ValueError):
            TcpSegment.decode(b"\x00" * 10)


class TestIcmp:
    def test_echo_roundtrip(self):
        message = IcmpMessage.echo_request(ident=7, seq=3, data=b"ping")
        decoded = IcmpMessage.decode(message.encode())
        assert decoded.icmp_type == IcmpType.ECHO_REQUEST
        assert decoded.body.endswith(b"ping")

    def test_echo_reply(self):
        decoded = IcmpMessage.decode(IcmpMessage.echo_reply().encode())
        assert decoded.icmp_type == IcmpType.ECHO_REPLY

    def test_truncated(self):
        with pytest.raises(ValueError):
            IcmpMessage.decode(b"\x08")


class TestIcmpv6:
    def test_neighbor_solicitation_carries_mac(self):
        import ipaddress

        target = ipaddress.IPv6Address("fe80::1").packed
        message = Icmpv6Message.neighbor_solicitation(target, "00:17:88:68:5f:61")
        decoded = Icmpv6Message.decode(message.encode())
        assert decoded.icmp_type == Icmpv6Type.NEIGHBOR_SOLICITATION
        assert str(decoded.embedded_mac()) == "00:17:88:68:5f:61"

    def test_neighbor_advertisement_carries_mac(self):
        import ipaddress

        target = ipaddress.IPv6Address("fe80::2").packed
        message = Icmpv6Message.neighbor_advertisement(target, "9c:8e:cd:0a:33:1b")
        decoded = Icmpv6Message.decode(message.encode())
        assert str(decoded.embedded_mac()) == "9c:8e:cd:0a:33:1b"

    def test_embedded_mac_absent_for_other_types(self):
        message = Icmpv6Message(Icmpv6Type.ECHO_REQUEST, 0, b"\x00" * 8)
        assert message.embedded_mac() is None
