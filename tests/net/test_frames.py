"""Unit tests for Ethernet / ARP / EAPOL / IGMP codecs."""

import pytest

from repro.net.arp import ArpOp, ArpPacket
from repro.net.eapol import EapolFrame, EapolType
from repro.net.ether import EthernetFrame, EtherType
from repro.net.igmp import IgmpMessage, IgmpType
from repro.net.mac import BROADCAST_MAC, MacAddress


class TestEthernet:
    def test_roundtrip(self):
        frame = EthernetFrame("02:00:00:00:00:02", "02:00:00:00:00:01", EtherType.IPV4, b"abc")
        decoded = EthernetFrame.decode(frame.encode())
        assert decoded.dst == "02:00:00:00:00:02"
        assert decoded.src == "02:00:00:00:00:01"
        assert decoded.ethertype == EtherType.IPV4
        assert decoded.payload == b"abc"

    def test_kind_classification(self):
        assert EthernetFrame(BROADCAST_MAC, "02:00:00:00:00:01", 0x0806).kind is EtherType.ARP
        assert EthernetFrame(BROADCAST_MAC, "02:00:00:00:00:01", 0x888E).kind is EtherType.EAPOL
        # Values below 0x600 are 802.3 lengths -> LLC.
        assert EthernetFrame(BROADCAST_MAC, "02:00:00:00:00:01", 0x0100).kind is EtherType.LLC
        # Unknown high ethertypes also fall back to LLC bucket.
        assert EtherType.classify(0x9999) is EtherType.LLC

    def test_broadcast_and_multicast_flags(self):
        broadcast = EthernetFrame(BROADCAST_MAC, "02:00:00:00:00:01", EtherType.IPV4)
        assert broadcast.is_broadcast and broadcast.is_multicast
        multicast = EthernetFrame("01:00:5e:00:00:fb", "02:00:00:00:00:01", EtherType.IPV4)
        assert multicast.is_multicast and not multicast.is_broadcast

    def test_truncated(self):
        with pytest.raises(ValueError):
            EthernetFrame.decode(b"\x00" * 10)

    def test_len(self):
        frame = EthernetFrame(BROADCAST_MAC, "02:00:00:00:00:01", EtherType.IPV4, b"xy")
        assert len(frame) == 16


class TestArp:
    def test_request_roundtrip(self):
        packet = ArpPacket(ArpOp.REQUEST, "02:00:00:00:00:01", "192.168.10.5",
                           "00:00:00:00:00:00", "192.168.10.60")
        decoded = ArpPacket.decode(packet.encode())
        assert decoded.op is ArpOp.REQUEST
        assert decoded.sender_ip == "192.168.10.5"
        assert decoded.target_ip == "192.168.10.60"

    def test_reply_roundtrip(self):
        packet = ArpPacket(ArpOp.REPLY, "02:00:00:00:00:02", "192.168.10.60",
                           "02:00:00:00:00:01", "192.168.10.5")
        decoded = ArpPacket.decode(packet.encode())
        assert decoded.op is ArpOp.REPLY
        assert decoded.sender_mac == "02:00:00:00:00:02"

    def test_probe_detection(self):
        probe = ArpPacket(ArpOp.REQUEST, "02:00:00:00:00:01", "0.0.0.0",
                          "00:00:00:00:00:00", "192.168.10.60")
        assert probe.is_probe and not probe.is_gratuitous

    def test_gratuitous_detection(self):
        gratuitous = ArpPacket(ArpOp.REQUEST, "02:00:00:00:00:01", "192.168.10.5",
                               "00:00:00:00:00:00", "192.168.10.5")
        assert gratuitous.is_gratuitous and not gratuitous.is_probe

    def test_unsupported_hardware_type(self):
        raw = bytearray(ArpPacket(ArpOp.REQUEST, "02:00:00:00:00:01", "192.168.10.5",
                                  "00:00:00:00:00:00", "192.168.10.60").encode())
        raw[0:2] = b"\x00\x06"  # IEEE 802 hardware type
        with pytest.raises(ValueError):
            ArpPacket.decode(bytes(raw))

    def test_truncated(self):
        with pytest.raises(ValueError):
            ArpPacket.decode(b"\x00" * 8)


class TestEapol:
    def test_roundtrip(self):
        frame = EapolFrame.key_frame(1)
        decoded = EapolFrame.decode(frame.encode())
        assert decoded.packet_type == EapolType.KEY
        assert decoded.version == 2
        assert len(decoded.body) == len(frame.body)

    def test_all_handshake_messages(self):
        for message in (1, 2, 3, 4):
            assert EapolFrame.key_frame(message).packet_type == EapolType.KEY

    def test_invalid_message_number(self):
        with pytest.raises(ValueError):
            EapolFrame.key_frame(5)

    def test_truncated(self):
        with pytest.raises(ValueError):
            EapolFrame.decode(b"\x02")


class TestIgmp:
    def test_join_roundtrip(self):
        decoded = IgmpMessage.decode(IgmpMessage.join("224.0.0.251").encode())
        assert decoded.igmp_type == IgmpType.V2_MEMBERSHIP_REPORT
        assert decoded.group == "224.0.0.251"

    def test_leave_roundtrip(self):
        decoded = IgmpMessage.decode(IgmpMessage.leave("239.255.255.250").encode())
        assert decoded.igmp_type == IgmpType.LEAVE_GROUP

    def test_query(self):
        query = IgmpMessage(IgmpType.MEMBERSHIP_QUERY, "0.0.0.0", max_resp_time=100)
        decoded = IgmpMessage.decode(query.encode())
        assert decoded.max_resp_time == 100

    def test_truncated(self):
        with pytest.raises(ValueError):
            IgmpMessage.decode(b"\x16\x00")
