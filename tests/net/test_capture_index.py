"""CaptureIndex: bucket correctness and list-vs-index analysis equality.

The decode-once index is only useful if every bucket matches a
brute-force scan of the same capture and every analysis entry point
produces *identical* artifacts whether handed the raw packet list or
the prebuilt index.
"""

from __future__ import annotations

import pytest

from repro.classify.crossval import cross_validate
from repro.classify.rules import CorrectedClassifier
from repro.core.device_graph import build_device_graph
from repro.core.exposure import analyze_exposure
from repro.core.periodicity import analyze_periodicity
from repro.core.protocol_census import census_from_capture
from repro.core.responses import category_of_profile, correlate_responses
from repro.core.threat_report import build_threat_report
from repro.net.decode import quick_protocol
from repro.net.flows import assemble_flows
from repro.net.index import CaptureIndex
from tests.conftest import device_maps


@pytest.fixture
def indexed_capture(mini_capture):
    testbed, packets = mini_capture
    return testbed, packets, CaptureIndex(packets)


class TestBuckets:
    def test_rows_preserve_capture_order(self, indexed_capture):
        _, packets, index = indexed_capture
        assert len(index.rows) == len(packets)
        assert [row.packet for row in index.rows] == packets

    def test_row_columns_match_packet_properties(self, indexed_capture):
        _, packets, index = indexed_capture
        for row in index.rows[:200]:
            packet = row.packet
            assert row.src == str(packet.frame.src)
            assert row.dst == str(packet.frame.dst)
            assert row.timestamp == packet.timestamp
            assert row.transport == packet.transport
            assert row.src_ip == packet.src_ip
            assert row.dst_ip == packet.dst_ip
            assert row.src_port == packet.src_port
            assert row.dst_port == packet.dst_port
            assert row.is_unicast == packet.is_unicast
            assert row.is_broadcast == packet.is_broadcast
            assert row.protocol == quick_protocol(packet)

    def test_by_src_mac_matches_brute_force(self, indexed_capture):
        _, packets, index = indexed_capture
        for mac, rows in index.by_src_mac.items():
            expected = [p for p in packets if str(p.frame.src) == mac]
            assert [row.packet for row in rows] == expected
        # Every packet lands in exactly one source bucket.
        assert sum(len(rows) for rows in index.by_src_mac.values()) == len(packets)

    def test_by_protocol_matches_brute_force(self, indexed_capture):
        _, packets, index = indexed_capture
        for tag, rows in index.by_protocol.items():
            expected = [p for p in packets if quick_protocol(p) == tag]
            assert [row.packet for row in rows] == expected
        assert sum(index.protocol_counts().values()) == len(packets)

    def test_filtered_views_match_brute_force(self, indexed_capture):
        _, packets, index = indexed_capture
        assert [r.packet for r in index.arp] == [p for p in packets if p.arp is not None]
        assert [r.packet for r in index.udp] == [p for p in packets if p.udp is not None]
        assert [r.packet for r in index.tcp_payload] == [
            p for p in packets
            if p.udp is None and p.tcp is not None and p.tcp.payload
        ]
        assert [r.packet for r in index.transport_unicast] == [
            p for p in packets if p.transport is not None and p.is_unicast
        ]
        assert [r.packet for r in index.transport_multicast] == [
            p for p in packets if p.transport is not None and not p.is_unicast
        ]

    def test_ensure_passes_through_and_wraps(self, indexed_capture):
        _, packets, index = indexed_capture
        assert CaptureIndex.ensure(index) is index
        rebuilt = CaptureIndex.ensure(packets)
        assert rebuilt is not index
        assert len(rebuilt) == len(index) == len(packets)

    def test_rows_from(self, indexed_capture):
        _, _, index = indexed_capture
        some_mac = next(iter(index.by_src_mac))
        assert index.rows_from(some_mac) == index.by_src_mac[some_mac]
        assert index.rows_from("ff:ff:ff:ff:ff:fe") == []


class TestLabels:
    def test_labels_memoized_and_match_fresh_classifier(self, indexed_capture):
        _, _, index = indexed_capture
        fresh = CorrectedClassifier()
        for row in index.rows[:300]:
            first = index.label_of(row)
            assert index.label_of(row) is first  # memo hit
            assert first == fresh.classify_packet(row.packet)

    def test_custom_classifier_bypasses_memo(self, indexed_capture):
        _, _, index = indexed_capture

        class Sentinel:
            def classify_packet(self, packet):
                return "SENTINEL"

        row = index.rows[0]
        baseline = index.label_of(row)
        assert index.label_of(row, Sentinel()) == "SENTINEL"
        # The memoized default label is untouched.
        assert index.label_of(row) == baseline

    def test_ensure_labels_fills_every_row(self, indexed_capture):
        _, _, index = indexed_capture
        index.ensure_labels()
        fresh = CorrectedClassifier()
        for row in index.rows:
            assert index.label_of(row) == fresh.classify_packet(row.packet)

    def test_flows_lazy_and_equivalent(self, indexed_capture):
        _, packets, index = indexed_capture
        assert index._flows is None
        table = index.flows
        assert index.flows is table  # assembled once
        expected = assemble_flows(packets)
        assert len(table) == len(expected)
        assert [flow.key for flow in table] == [flow.key for flow in expected]


class TestAnalysisEquality:
    """Every entry point: raw list in == prebuilt index in, byte for byte."""

    def test_census(self, indexed_capture):
        testbed, packets, index = indexed_capture
        macs, _, _ = device_maps(testbed)
        assert census_from_capture(packets, macs).passive == \
            census_from_capture(index, macs).passive

    def test_device_graph(self, indexed_capture):
        testbed, packets, index = indexed_capture
        macs, vendors, _ = device_maps(testbed)
        from_list = build_device_graph(packets, macs, vendors)
        from_index = build_device_graph(index, macs, vendors)
        assert sorted(from_list.graph.edges(data=True)) == \
            sorted(from_index.graph.edges(data=True))
        assert from_list.summary() == from_index.summary()

    def test_exposure(self, indexed_capture):
        testbed, packets, index = indexed_capture
        macs, _, _ = device_maps(testbed)
        from_list = analyze_exposure(packets, macs)
        from_index = analyze_exposure(index, macs)
        assert from_list.cells == from_index.cells
        assert from_list.examples == from_index.examples  # ordering too

    @pytest.mark.parametrize("include_multicast", [False, True])
    def test_responses(self, indexed_capture, include_multicast):
        testbed, packets, index = indexed_capture
        macs, _, categories = device_maps(testbed)
        from_list = correlate_responses(
            packets, macs, categories,
            include_multicast_responses=include_multicast)
        from_index = correlate_responses(
            index, macs, categories,
            include_multicast_responses=include_multicast)
        assert from_list.by_category() == from_index.by_category()
        for name, stats in from_list.per_device.items():
            other = from_index.per_device[name]
            assert stats.discovery_protocols == other.discovery_protocols
            assert stats.protocols_with_response == other.protocols_with_response
            assert stats.responders == other.responders

    def test_periodicity(self, indexed_capture):
        testbed, packets, index = indexed_capture
        macs, _, _ = device_maps(testbed)
        from_list = analyze_periodicity(packets, macs)
        from_index = analyze_periodicity(index, macs)
        # Detection list order is group-creation order: must be identical.
        assert [
            (d.device, d.destination, d.protocol, d.event_count, d.is_periodic, d.period)
            for d in from_list.detections
        ] == [
            (d.device, d.destination, d.protocol, d.event_count, d.is_periodic, d.period)
            for d in from_index.detections
        ]

    def test_crossval(self, indexed_capture):
        _, packets, index = indexed_capture
        from_list = cross_validate(packets)
        from_index = cross_validate(index)
        assert from_list.confusion == from_index.confusion
        assert from_list.total_units == from_index.total_units
        assert (from_list.agree, from_list.disagree, from_list.neither) == \
            (from_index.agree, from_index.disagree, from_index.neither)

    def test_threat_report(self, indexed_capture):
        testbed, packets, index = indexed_capture
        macs, _, _ = device_maps(testbed)
        from_list = build_threat_report(packets, macs)
        from_index = build_threat_report(index, macs)
        assert from_list.plaintext_http_devices == from_index.plaintext_http_devices
        assert from_list.http_clients_only == from_index.http_clients_only
        assert from_list.http_servers == from_index.http_servers
        assert dict(from_list.user_agents) == dict(from_index.user_agents)
        assert set(from_list.tls_devices) == set(from_index.tls_devices)
        for device, posture in from_list.tls_devices.items():
            other = from_index.tls_devices[device]
            assert posture.versions == other.versions
            assert posture.mutual_auth == other.mutual_auth
            assert len(posture.certificates) == len(other.certificates)
