"""The columnar packet store: column equivalence and lazy materialization.

The struct-of-arrays :class:`PacketTable` is only correct if its columns
agree with eager ``decode_frame`` over every frame shape — including
the malformed corpus the quarantine path exists for — and if rows stay
un-materialized until something actually asks for the packet object.
"""

from __future__ import annotations

import pytest

from repro.net.columnar import (
    F_ARP,
    F_BROADCAST,
    F_MALFORMED,
    F_TCP_PAYLOAD,
    F_UDP,
    F_UNICAST,
    TRANSPORT_NONE,
    TRANSPORT_TCP,
    TRANSPORT_UDP,
    LazyPackets,
    PacketTable,
)
from repro.net.decode import DecodeErrorLog, decode_frame, quick_protocol
from repro.net.ether import EthernetFrame, EtherType
from repro.net.ipv4 import Ipv4Packet
from repro.net.mac import MacAddress
from repro.net.tcp import TcpSegment
from repro.net.udp import UdpDatagram

_SRC = "02:aa:00:00:00:01"
_DST = "02:aa:00:00:00:02"


def _udp_frame(sport=40000, dport=5353, payload=b"hello",
               src_ip="192.168.10.10", dst_ip="192.168.10.20") -> bytes:
    datagram = UdpDatagram(sport, dport, payload)
    ip = Ipv4Packet(src_ip, dst_ip, 17, datagram.encode())
    return EthernetFrame(_SRC, _DST, EtherType.IPV4, ip.encode()).encode()


def _tcp_frame(payload=b"GET / HTTP/1.1\r\n\r\n") -> bytes:
    segment = TcpSegment(src_port=51000, dst_port=80, payload=payload)
    ip = Ipv4Packet("192.168.10.10", "192.168.10.20", 6, segment.encode())
    return EthernetFrame(_SRC, _DST, EtherType.IPV4, ip.encode()).encode()


def _arp_frame() -> bytes:
    from repro.net.arp import ArpOp, ArpPacket

    arp = ArpPacket(op=ArpOp.REQUEST, sender_mac=_SRC,
                    sender_ip="192.168.10.10",
                    target_mac="00:00:00:00:00:00",
                    target_ip="192.168.10.20")
    return EthernetFrame(_SRC, "ff:ff:ff:ff:ff:ff",
                         EtherType.ARP, arp.encode()).encode()


def _mixed_records():
    """Clean, broadcast, fallback, and malformed frames in one capture."""
    well_formed = [
        _udp_frame(),
        _udp_frame(dport=1900, dst_ip="239.255.255.250", payload=b"M-SEARCH"),
        _udp_frame(sport=68, dport=67, dst_ip="255.255.255.255",
                   payload=b"\x01" * 64),
        _tcp_frame(),
        _tcp_frame(payload=b""),
        _arp_frame(),
    ]
    icmp = EthernetFrame(_SRC, _DST, EtherType.IPV4, Ipv4Packet(
        "192.168.10.10", "192.168.10.20", 1, b"\x08\x00\x00\x00").encode(),
    ).encode()
    malformed = [
        b"\x00" * 10,                 # runt: too short for Ethernet
        _udp_frame()[:20],            # truncated mid-IPv4-header
        _udp_frame()[:36],            # truncated mid-UDP-header
        _tcp_frame()[:40],            # truncated mid-TCP-header
        _arp_frame()[:30],            # truncated ARP body
    ]
    frames = well_formed + [icmp] + malformed
    return [(float(i), frame) for i, frame in enumerate(frames)]


class TestColumnEquivalence:
    def test_columns_match_eager_decode(self):
        records = _mixed_records()
        table = PacketTable.from_records(records, DecodeErrorLog())
        assert len(table) == len(records)
        for rid, (timestamp, data) in enumerate(records):
            expected = decode_frame(data, timestamp)
            assert table.timestamps[rid] == timestamp
            assert table.mac_strings[table.src_mac[rid]] == str(expected.frame.src)
            assert table.mac_strings[table.dst_mac[rid]] == str(expected.frame.dst)
            assert table.protocol_tags[table.protocol[rid]] == quick_protocol(expected)
            code = table.transport[rid]
            assert code == {None: TRANSPORT_NONE, "udp": TRANSPORT_UDP,
                            "tcp": TRANSPORT_TCP}[expected.transport]
            for column, value in ((table.src_ip, expected.src_ip),
                                  (table.dst_ip, expected.dst_ip)):
                if value is None:
                    assert column[rid] < 0
                else:
                    assert table.ip_strings[column[rid]] == value
            assert table.src_port[rid] == (expected.src_port
                                           if expected.src_port is not None else -1)
            assert table.dst_port[rid] == (expected.dst_port
                                           if expected.dst_port is not None else -1)

    def test_flags_match_packet_predicates(self):
        records = _mixed_records()
        table = PacketTable.from_records(records, DecodeErrorLog())
        for rid, (timestamp, data) in enumerate(records):
            expected = decode_frame(data, timestamp)
            flags = table.flags[rid]
            assert bool(flags & F_UNICAST) == expected.is_unicast
            assert bool(flags & F_BROADCAST) == expected.is_broadcast
            assert bool(flags & F_ARP) == (expected.arp is not None)
            assert bool(flags & F_UDP) == (expected.udp is not None)
            assert bool(flags & F_TCP_PAYLOAD) == (
                expected.udp is None and expected.tcp is not None
                and bool(expected.tcp.payload))
            assert bool(flags & F_MALFORMED) == expected.is_malformed

    def test_quarantine_counts_match_eager_decode(self):
        records = _mixed_records()
        eager_errors = DecodeErrorLog()
        for timestamp, data in records:
            decode_frame(data, timestamp, errors=eager_errors)
        columnar_errors = DecodeErrorLog()
        PacketTable.from_records(records, columnar_errors)
        assert columnar_errors.counts == eager_errors.counts
        assert sum(columnar_errors.counts.values()) > 0  # corpus has damage

    def test_app_payload_and_frame_bytes(self):
        records = _mixed_records()
        table = PacketTable.from_records(records, DecodeErrorLog())
        for rid, (timestamp, data) in enumerate(records):
            assert table.frame_bytes(rid) == data
            assert table.app_payload(rid) == decode_frame(data, timestamp).app_payload


class TestLazyMaterialization:
    def test_rows_stay_lazy_until_touched(self):
        records = [(0.0, _udp_frame()), (1.0, _tcp_frame()), (2.0, _arp_frame())]
        table = PacketTable.from_records(records, DecodeErrorLog())
        assert table._packets == [None, None, None]
        packet = table.packet(1)
        assert table._packets[0] is None and table._packets[2] is None
        assert table.packet(1) is packet  # memoized

    def test_malformed_rows_are_cached_eagerly(self):
        """The fallback path already built the packet; keep it."""
        table = PacketTable.from_records([(0.0, b"\x00" * 10)], DecodeErrorLog())
        assert table._packets[0] is not None
        assert table.packet(0).is_malformed

    def test_from_packets_returns_original_objects(self):
        packets = [decode_frame(_udp_frame(), 0.0), decode_frame(_tcp_frame(), 1.0)]
        table = PacketTable.from_packets(packets)
        assert table.packet(0) is packets[0]
        assert table.packet(1) is packets[1]
        assert table.packets() == packets

    def test_materialized_equals_eager_decode(self):
        records = _mixed_records()
        table = PacketTable.from_records(records, DecodeErrorLog())
        eager = [decode_frame(data, ts) for ts, data in records]
        assert table.packets() == eager


class TestLazyPackets:
    def test_sequence_protocol_and_equality(self):
        records = [(float(i), _udp_frame(sport=40000 + i)) for i in range(4)]
        table = PacketTable.from_records(records, DecodeErrorLog())
        view = LazyPackets(table, [0, 2])
        assert len(view) == 2
        assert view == [table.packet(0), table.packet(2)]
        assert view == LazyPackets(table, [0, 2])
        assert view != LazyPackets(table, [0, 1])
        with pytest.raises(TypeError):
            hash(view)

    def test_interning_is_shared_across_rows(self):
        records = [(float(i), _udp_frame()) for i in range(50)]
        table = PacketTable.from_records(records, DecodeErrorLog())
        assert len(table.mac_strings) == 2
        assert len(table.ip_strings) == 2
        assert len(set(table.src_mac)) == 1

    def test_mac_id_of_accepts_both_forms(self):
        table = PacketTable.from_records([(0.0, _udp_frame())], DecodeErrorLog())
        assert table.mac_id_of(_SRC) == table.mac_id_of(MacAddress(_SRC))
        assert table.mac_id_of("02:ff:ff:ff:ff:ff") is None
