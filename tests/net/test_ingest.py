"""Streaming pcap ingest: bounded chunks, equivalence, CLI smoke.

``ingest_pcap`` must produce the same table whether it reads the pcap
in one chunk or many, survive captures containing quarantined frames,
and surface everything the ``repro ingest`` CLI needs.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.net.columnar import PacketTable
from repro.net.decode import DecodeErrorLog
from repro.net.ingest import (
    DEFAULT_CHUNK_RECORDS,
    ingest_pcap,
    iter_pcap_chunks,
)
from repro.net.pcap import write_pcap
from tests.net.test_columnar import _mixed_records


@pytest.fixture
def mixed_pcap(tmp_path):
    records = _mixed_records()
    path = tmp_path / "mixed.pcap"
    write_pcap(path, [(ts, data) for ts, data in records])
    return path, records


class TestChunking:
    def test_chunks_cover_all_records_in_order(self, mixed_pcap):
        path, records = mixed_pcap
        chunks = list(iter_pcap_chunks(path, chunk_records=4))
        assert all(len(chunk) <= 4 for chunk in chunks)
        flattened = [record for chunk in chunks for record in chunk]
        assert flattened == records

    def test_chunk_records_must_be_positive(self, mixed_pcap):
        path, _ = mixed_pcap
        for bad in (0, -1):
            with pytest.raises(ValueError, match="chunk_records"):
                list(iter_pcap_chunks(path, chunk_records=bad))

    def test_chunked_equals_whole_file(self, mixed_pcap):
        path, records = mixed_pcap
        small = ingest_pcap(path, chunk_records=3)
        whole = ingest_pcap(path, chunk_records=DEFAULT_CHUNK_RECORDS)
        assert small.stats.chunks > 1 and whole.stats.chunks == 1
        assert len(small) == len(whole) == len(records)
        assert small.table.packets() == whole.table.packets()
        assert small.stats.quarantined == whole.stats.quarantined
        assert small.index.protocol_counts() == whole.index.protocol_counts()


class TestQuarantineRoundTrip:
    def test_malformed_frames_survive_pcap_round_trip(self, tmp_path):
        """Capture → write_pcap → ingest keeps damaged frames verbatim."""
        from repro.simnet.capture import ApCapture

        records = _mixed_records()
        capture = ApCapture()
        for timestamp, data in records:
            capture.observe(timestamp, data)
        capture.index()  # force ingest so the capture quarantines
        assert capture.decode_errors.counts  # the corpus has damage

        path = tmp_path / "round-trip.pcap"
        assert capture.write_pcap(path) == len(records)
        result = ingest_pcap(path, chunk_records=4)
        assert len(result) == len(records)
        # Byte-identical frames, malformed ones included.
        for rid, (timestamp, data) in enumerate(records):
            assert result.table.timestamps[rid] == timestamp
            assert result.table.frame_bytes(rid) == data
        assert result.errors.counts == capture.decode_errors.counts
        assert result.stats.quarantined_total == sum(
            capture.decode_errors.counts.values())

    def test_append_onto_existing_table(self, mixed_pcap):
        path, records = mixed_pcap
        table = PacketTable()
        errors = DecodeErrorLog()
        first = ingest_pcap(path, errors=errors, table=table)
        second = ingest_pcap(path, errors=errors, table=table)
        assert first.table is second.table is table
        assert len(table) == 2 * len(records)
        # Each pass reports only its own quarantine delta.
        assert first.stats.quarantined == second.stats.quarantined

    def test_truncated_pcap_file_raises(self, mixed_pcap, tmp_path):
        path, _ = mixed_pcap
        clipped = tmp_path / "clipped.pcap"
        clipped.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(ValueError):
            ingest_pcap(clipped)


class TestIngestCli:
    def test_cli_smoke_with_json_artifacts(self, mixed_pcap, tmp_path, capsys):
        path, records = mixed_pcap
        device_map = tmp_path / "devices.json"
        device_map.write_text(json.dumps({
            "02:aa:00:00:00:01": {"name": "lamp", "vendor": "acme",
                                  "category": "bulb"},
        }))
        out = tmp_path / "ingest.json"
        code = main(["ingest", str(path), "--device-map", str(device_map),
                     "--chunk-records", "4", "--json", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert f"{len(records)} packets" in printed
        payload = json.loads(out.read_text())
        assert payload["packets"] == len(records)
        assert payload["chunks"] > 1
        assert payload["quarantined"]
        assert sum(payload["protocol_counts"].values()) == len(records)
        assert "census_passive" in payload and "crossval" in payload

    def test_cli_missing_pcap_fails(self, tmp_path, capsys):
        code = main(["ingest", str(tmp_path / "absent.pcap")])
        assert code == 1
        assert "cannot ingest" in capsys.readouterr().err

    def test_cli_header_only_pcap_exits_zero(self, tmp_path, capsys):
        """A valid pcap with no records is an empty capture, not an error."""
        from repro.net.pcap import PcapWriter

        path = tmp_path / "header_only.pcap"
        PcapWriter(path).close()
        out = tmp_path / "empty.json"
        code = main(["ingest", str(path), "--json", str(out)])
        assert code == 0
        assert "capture contains no packets" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["packets"] == 0 and payload["bytes"] == 0
        assert payload["graph_summary"]["device_pairs"] == 0
        # Same payload key set as a populated run, so downstream
        # consumers need no special casing.
        assert {"census_passive", "exposure", "periodicity", "threat",
                "crossval"} <= payload.keys()

    def test_cli_zero_byte_pcap_exits_zero(self, tmp_path, capsys):
        """A zero-byte file (capture never started) is also empty, not bad."""
        path = tmp_path / "zero.pcap"
        path.write_bytes(b"")
        code = main(["ingest", str(path)])
        assert code == 0
        assert "capture contains no packets" in capsys.readouterr().out

    def test_cli_truncated_header_still_fails(self, tmp_path, capsys):
        """A file with a *partial* global header stays a hard error."""
        path = tmp_path / "truncated.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1\x02\x00")
        code = main(["ingest", str(path)])
        assert code == 1
        assert "cannot ingest" in capsys.readouterr().err

    def test_cli_bad_device_map_fails(self, mixed_pcap, tmp_path, capsys):
        path, _ = mixed_pcap
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(["not", "a", "mapping"]))
        code = main(["ingest", str(path), "--device-map", str(bad)])
        assert code == 2
        assert "--device-map" in capsys.readouterr().err
