"""Failure injection: decoding must be total over damaged input.

The AP capture can contain truncated or corrupted frames (snaplen,
radio loss); every analysis walks the capture, so decode_frame and the
classifiers must never raise on damaged bytes.
"""

import random

import pytest

from repro.classify.ndpi_like import NdpiLikeClassifier
from repro.classify.rules import CorrectedClassifier
from repro.classify.tshark_like import TsharkLikeClassifier
from repro.net.decode import decode_frame
from repro.net.ether import EthernetFrame, EtherType
from repro.net.ipv4 import Ipv4Packet
from repro.net.udp import UdpDatagram
from repro.protocols.dhcp import DhcpMessage
from repro.protocols.dns import DnsMessage
from repro.protocols.mdns import ServiceAdvertisement
from repro.protocols.ssdp import SsdpMessage
from repro.protocols.tplink_shp import TplinkShpMessage
from repro.protocols.tuyalp import TuyaLpMessage


def _sample_frames():
    """A representative frame of every protocol family."""
    frames = []
    advert = ServiceAdvertisement("_hue._tcp.local", "Hue", "h.local", 443, "192.168.10.2")
    payloads = [
        (5353, 5353, advert.to_response().encode()),
        (50000, 1900, SsdpMessage.msearch().encode()),
        (68, 67, DhcpMessage.discover("02:00:00:00:00:01", 7, hostname="x").encode()),
        (51000, 9999, TplinkShpMessage.get_sysinfo_query().encode()),
        (6666, 6666, TuyaLpMessage.discovery("g", "p", "10.0.0.1").encode()),
    ]
    for sport, dport, payload in payloads:
        datagram = UdpDatagram(sport, dport, payload)
        packet = Ipv4Packet("192.168.10.1", "192.168.10.2", 17, datagram.encode())
        frames.append(
            EthernetFrame("02:00:00:00:00:02", "02:00:00:00:00:01",
                          EtherType.IPV4, packet.encode()).encode()
        )
    return frames


class TestTruncation:
    @pytest.mark.parametrize("frame", _sample_frames(), ids=["mdns", "ssdp", "dhcp", "tplink", "tuya"])
    def test_every_truncation_decodes(self, frame):
        classifiers = [TsharkLikeClassifier(), NdpiLikeClassifier(), CorrectedClassifier()]
        for cut in range(14, len(frame)):
            packet = decode_frame(frame[:cut])
            for classifier in classifiers:
                classifier.classify_packet(packet)  # must never raise

    def test_too_short_for_ethernet_yields_quarantined_stub(self):
        """Decode is total: runt frames come back as marked stubs."""
        from repro.net.decode import DecodeErrorLog

        errors = DecodeErrorLog()
        packet = decode_frame(b"\x00" * 10, timestamp=1.5, errors=errors)
        assert packet.is_malformed
        assert packet.decode_error == "ethernet"
        assert packet.timestamp == 1.5
        assert errors.counts == {"ethernet": 1}


class TestBitflips:
    def test_random_corruption_never_crashes(self):
        rng = random.Random(99)
        classifiers = [TsharkLikeClassifier(), NdpiLikeClassifier(), CorrectedClassifier()]
        for frame in _sample_frames():
            for _ in range(50):
                corrupted = bytearray(frame)
                for _ in range(rng.randrange(1, 6)):
                    corrupted[rng.randrange(len(corrupted))] ^= 1 << rng.randrange(8)
                packet = decode_frame(bytes(corrupted))
                for classifier in classifiers:
                    classifier.classify_packet(packet)

    def test_random_garbage_payloads(self):
        rng = random.Random(7)
        for _ in range(100):
            payload = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 120)))
            datagram = UdpDatagram(rng.randrange(65536), rng.randrange(65536), payload)
            ip_packet = Ipv4Packet("192.168.10.1", "192.168.10.2", 17, datagram.encode())
            frame = EthernetFrame("02:00:00:00:00:02", "02:00:00:00:00:01",
                                  EtherType.IPV4, ip_packet.encode()).encode()
            packet = decode_frame(frame)
            CorrectedClassifier().classify_packet(packet)


class TestAnalysisRobustness:
    def test_exposure_analysis_on_garbage(self):
        from repro.core.exposure import analyze_exposure

        rng = random.Random(3)
        packets = []
        for port in (67, 5353, 1900, 6666, 9999):
            payload = bytes(rng.randrange(256) for _ in range(64))
            datagram = UdpDatagram(50000, port, payload)
            ip_packet = Ipv4Packet("192.168.10.1", "192.168.10.2", 17, datagram.encode())
            frame = EthernetFrame("02:00:00:00:00:02", "02:00:00:00:00:01",
                                  EtherType.IPV4, ip_packet.encode()).encode()
            packets.append(decode_frame(frame))
        matrix = analyze_exposure(packets, {"02:00:00:00:00:01": "dev"})
        # Garbage must not produce spurious geolocation/key exposure.
        assert not matrix.devices_exposing("TPLINK", "Geolocation")
        assert not matrix.devices_exposing("TuyaLP", "Prod. Key")

    def test_inspector_payloads_are_data_not_instructions(self):
        """A hostile device label/payload cannot break extraction."""
        from repro.inspector.entropy import device_identifiers
        from repro.inspector.schema import InspectedDevice

        hostile = InspectedDevice(
            device_id="x", oui="d8:31:34",
            dhcp_hostname="$(rm -rf /)'; DROP TABLE devices;--",
            ssdp_responses=[b"HTTP/1.1 200 OK\r\nUSN: uuid:\xff\xfe\x00broken\r\n\r\n"],
            mdns_responses=[b"\x00\x01\x02"],
        )
        identifiers = device_identifiers(hostile)
        assert identifiers["uuid"] == set()
        assert identifiers["mac"] == set()
