"""Tests for UPnP SOAP control (the HTTP.SOAP surface of §5.2)."""

import pytest

from repro.protocols.http import HttpRequest
from repro.protocols.upnp_soap import (
    AVTRANSPORT,
    SoapAction,
    extract_media_url,
    play,
    set_av_transport_uri,
)


class TestSoapCodec:
    def test_request_roundtrip(self):
        action = set_av_transport_uri("http://media.example/show.mp4")
        request = action.to_http_request()
        assert request.is_soap
        assert request.headers["SOAPACTION"] == f'"{AVTRANSPORT}#SetAVTransportURI"'
        decoded = SoapAction.from_http(request)
        assert decoded.action == "SetAVTransportURI"
        assert decoded.arguments["CurrentURI"] == "http://media.example/show.mp4"
        assert not decoded.is_response

    def test_response_roundtrip(self):
        response = play().to_http_response()
        decoded = SoapAction.from_http(response)
        assert decoded.is_response
        assert decoded.action == "Play"
        assert decoded.arguments["Speed"] == "1"

    def test_non_soap_rejected(self):
        request = HttpRequest("POST", "/x", body=b"just text")
        with pytest.raises(ValueError):
            SoapAction.from_http(request)

    def test_extract_media_url(self):
        request = set_av_transport_uri("http://cdn.example/movie.mp4").to_http_request()
        assert extract_media_url(request) == "http://cdn.example/movie.mp4"

    def test_extract_none_for_other_actions(self):
        assert extract_media_url(play().to_http_request()) is None
        assert extract_media_url(HttpRequest("GET", "/")) is None


class TestCastingInteraction:
    def test_cast_carries_media_url_on_wire(self):
        from repro.devices.behaviors import build_testbed
        from repro.devices.catalog import build_catalog
        from repro.devices.interactions import Action, InteractionRunner

        profiles = [p for p in build_catalog()
                    if p.name in ("lg-tv-1", "amazon-echo-spot-1")]
        testbed = build_testbed(seed=41, profiles=profiles)
        testbed.run(5.0)
        runner = InteractionRunner(testbed)
        for _ in range(8):
            runner.run(1, gap=0.5)
        casts = [r for r in runner.records
                 if r.action is Action.CAST_MEDIA and r.target == "lg-tv-1"]
        assert casts
        packets = runner.traffic_during(casts[0])
        media_urls = []
        for packet in packets:
            if packet.tcp is None or not packet.tcp.payload.startswith(b"POST"):
                continue
            try:
                request = HttpRequest.decode(packet.tcp.payload)
            except ValueError:
                continue
            url = extract_media_url(request)
            if url:
                media_urls.append(url)
        # The §5.2 privacy point: the watched content is on the wire.
        assert media_urls and media_urls[0].startswith("http://media.example/")
