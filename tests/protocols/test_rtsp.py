"""Tests for the RTSP codec and camera-streaming interactions."""

import pytest

from repro.protocols.rtsp import RtspRequest, RtspResponse


class TestRtspRequest:
    def test_roundtrip(self):
        request = RtspRequest("DESCRIBE", "rtsp://192.168.10.5:554/live", cseq=3,
                              headers={"Accept": "application/sdp"})
        decoded = RtspRequest.decode(request.encode())
        assert decoded.method == "DESCRIBE"
        assert decoded.url == "rtsp://192.168.10.5:554/live"
        assert decoded.cseq == 3
        assert decoded.headers["Accept"] == "application/sdp"

    def test_all_methods(self):
        for method in ("OPTIONS", "SETUP", "PLAY", "PAUSE", "TEARDOWN"):
            request = RtspRequest(method, "rtsp://x/track")
            assert RtspRequest.decode(request.encode()).method == method

    def test_rejects_http(self):
        with pytest.raises(ValueError):
            RtspRequest.decode(b"GET / HTTP/1.1\r\n\r\n")

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            RtspRequest.decode(b"FROB rtsp://x RTSP/1.0\r\n\r\n")


class TestRtspResponse:
    def test_roundtrip(self):
        response = RtspResponse(cseq=2, headers={"Session": "777"})
        decoded = RtspResponse.decode(response.encode())
        assert decoded.status == 200
        assert decoded.cseq == 2
        assert decoded.headers["Session"] == "777"

    def test_describe_reply_names_camera(self):
        response = RtspResponse.describe_reply(1, "Wansview Q5", "192.168.10.31")
        decoded = RtspResponse.decode(response.encode())
        assert decoded.sdp_session_name == "Wansview Q5"
        assert decoded.headers["Content-Type"] == "application/sdp"

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            RtspResponse.decode(b"\x16\x03\x03\x00\x00")


class TestStreamingInteraction:
    def test_rtsp_cameras_stream_rtp(self):
        from repro.devices.behaviors import build_testbed
        from repro.devices.catalog import build_catalog
        from repro.devices.interactions import Action, InteractionRunner

        profiles = [p for p in build_catalog()
                    if p.name in ("amcrest-camera-1", "amazon-echo-spot-1")]
        testbed = build_testbed(seed=31, profiles=profiles)
        testbed.run(5.0)
        runner = InteractionRunner(testbed)
        # Force enough interactions that the camera gets streamed.
        for _ in range(6):
            runner.run(1, gap=1.0)
        stream_records = [r for r in runner.records
                          if r.action is Action.START_STREAM
                          and r.target == "amcrest-camera-1"]
        assert stream_records
        record = stream_records[0]
        packets = runner.traffic_during(record)
        assert any(p.tcp and b"DESCRIBE" in p.tcp.payload[:16] for p in packets)
        assert any(p.tcp and b"application/sdp" in p.tcp.payload for p in packets)
        # RTP media flows camera -> controller after PLAY.
        camera = testbed.device("amcrest-camera-1")
        rtp = [p for p in packets
               if p.udp is not None and str(p.frame.src) == str(camera.mac)
               and p.udp.src_port == 56000]
        assert len(rtp) >= 3
