"""Unit tests for TPLINK-SHP, TuyaLP, HTTP, TLS, RTP, STUN codecs."""

import json

import pytest

from repro.protocols.http import HttpRequest, HttpResponse
from repro.protocols.rtp import RtpPacket, looks_like_rtp
from repro.protocols.stun import BINDING_REQUEST, StunMessage, looks_like_stun
from repro.protocols.tls import (
    CertificateInfo,
    ContentType,
    HandshakeType,
    TlsRecord,
    TlsVersion,
    iter_records,
)
from repro.protocols.tplink_shp import (
    TplinkShpMessage,
    tplink_decrypt,
    tplink_encrypt,
)
from repro.protocols.tuyalp import TUYA_PORTS, TuyaLpMessage


class TestTplinkCrypto:
    def test_xor_autokey_roundtrip(self):
        plaintext = b'{"system":{"get_sysinfo":{}}}'
        assert tplink_decrypt(tplink_encrypt(plaintext)) == plaintext

    def test_known_first_byte(self):
        # First plaintext byte '{' (0x7b) XOR initial key 171 (0xab) = 0xd0.
        assert tplink_encrypt(b"{")[0] == 0x7B ^ 171

    def test_ciphertext_differs_from_plaintext(self):
        plaintext = b'{"system":{}}'
        assert tplink_encrypt(plaintext) != plaintext


class TestTplinkMessages:
    def test_sysinfo_query_roundtrip(self):
        query = TplinkShpMessage.get_sysinfo_query()
        decoded = TplinkShpMessage.decode(query.encode())
        assert decoded.is_sysinfo_query
        assert decoded.sysinfo is None

    def test_sysinfo_response_exposes_geolocation(self):
        response = TplinkShpMessage.sysinfo_response(
            alias="TP-Link Plug",
            device_id="8006E8E9017F556D283C850B4E29BC1F185334E5",
            hw_id="60FF6B258734EA6880E186F8C96DDC61",
            oem_id="FFF22CFF774A0B89F7624BFC6F50D5DE",
            model="HS110(US)",
            dev_name="Wi-Fi Smart Plug With Energy Monitoring",
            latitude=42.337681,
            longitude=-71.087036,
            mac="50:C7:BF:AA:BB:CC",
        )
        info = TplinkShpMessage.decode(response.encode()).sysinfo
        assert info["latitude"] == 42.337681
        assert info["longitude"] == -71.087036
        assert info["oemId"] == "FFF22CFF774A0B89F7624BFC6F50D5DE"
        assert info["mac"] == "50:C7:BF:AA:BB:CC"

    def test_tcp_framing(self):
        message = TplinkShpMessage.set_relay_state(True)
        wire = message.encode("tcp")
        assert int.from_bytes(wire[:4], "big") == len(wire) - 4
        decoded = TplinkShpMessage.decode(wire, transport="tcp")
        assert decoded.body["system"]["set_relay_state"]["state"] == 1

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            TplinkShpMessage.decode(b"\x00\x01\x02\x03")

    def test_rejects_non_object(self):
        wire = tplink_encrypt(json.dumps([1, 2, 3]).encode())
        with pytest.raises(ValueError):
            TplinkShpMessage.decode(wire)


class TestTuyaLp:
    def test_plaintext_discovery_roundtrip(self):
        message = TuyaLpMessage.discovery("gw-jinvoo", "prodkey123", "192.168.10.33")
        decoded = TuyaLpMessage.decode(message.encode())
        assert decoded.gw_id == "gw-jinvoo"
        assert decoded.product_key == "prodkey123"
        assert not decoded.encrypted
        assert decoded.payload["version"] == "3.1"

    def test_encrypted_discovery_roundtrip(self):
        message = TuyaLpMessage.discovery("gw2", "pk2", "192.168.10.34",
                                          version="3.3", encrypted=True)
        wire = message.encode()
        assert b"gw2" not in wire  # payload is obfuscated on the wire
        decoded = TuyaLpMessage.decode(wire)
        assert decoded.encrypted
        assert decoded.gw_id == "gw2"

    def test_frame_magic(self):
        wire = TuyaLpMessage.discovery("g", "p", "10.0.0.1").encode()
        assert wire[:4] == b"\x00\x00\x55\xaa"
        assert wire[-4:] == b"\x00\x00\xaa\x55"

    def test_crc_validation(self):
        wire = bytearray(TuyaLpMessage.discovery("g", "p", "10.0.0.1").encode())
        wire[20] ^= 0xFF
        with pytest.raises(ValueError):
            TuyaLpMessage.decode(bytes(wire))
        # but decodes with verification off (if payload still parses) or raises cleanly
        with pytest.raises(ValueError):
            TuyaLpMessage.decode(bytes(wire), verify_crc=True)

    def test_bad_prefix(self):
        with pytest.raises(ValueError):
            TuyaLpMessage.decode(b"\x00\x00\x00\x00" + b"\x00" * 24)

    def test_ports_constant(self):
        assert TUYA_PORTS == (6666, 6667)


class TestHttp:
    def test_request_roundtrip(self):
        request = HttpRequest("GET", "/api/config", {"Host": "192.168.10.12",
                                                     "User-Agent": "Chromecast OS/1.56"})
        decoded = HttpRequest.decode(request.encode())
        assert decoded.method == "GET"
        assert decoded.path == "/api/config"
        assert decoded.user_agent == "Chromecast OS/1.56"

    def test_request_with_body_sets_content_length(self):
        request = HttpRequest("POST", "/x", body=b"abc")
        wire = request.encode().decode()
        assert "Content-Length: 3" in wire

    def test_soap_detection(self):
        request = HttpRequest("POST", "/ctl", {"SOAPACTION": '"urn:...#SetAVTransportURI"'})
        assert HttpRequest.decode(request.encode()).is_soap

    def test_response_roundtrip(self):
        response = HttpResponse(200, "OK", {"Server": "GoAhead-Webs/2.5"}, b"<html/>")
        decoded = HttpResponse.decode(response.encode())
        assert decoded.status == 200
        assert decoded.server_banner == "GoAhead-Webs/2.5"
        assert decoded.body == b"<html/>"

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            HttpRequest.decode(b"\x16\x03\x01\x00\x00")
        with pytest.raises(ValueError):
            HttpResponse.decode(b"NOT HTTP")


class TestTls:
    def test_client_hello_versions(self):
        for version in (TlsVersion.TLS_1_2, TlsVersion.TLS_1_3):
            record = TlsRecord.client_hello(version)
            handshake = TlsRecord.decode(record.encode()).handshake()
            assert handshake.handshake_type is HandshakeType.CLIENT_HELLO
            assert handshake.version is version

    def test_record_layer_version_stays_12_for_13(self):
        record = TlsRecord.client_hello(TlsVersion.TLS_1_3)
        assert record.version is TlsVersion.TLS_1_2  # RFC 8446 §5.1

    def test_certificate_metadata_roundtrip(self):
        cert = CertificateInfo("192.168.0.5", "192.168.0.5", 0.0, 90 * 86400.0,
                               key_bits=96, self_signed=True)
        record = TlsRecord.certificate([cert], TlsVersion.TLS_1_2)
        got = TlsRecord.decode(record.encode()).handshake().certificates[0]
        assert got.subject_cn == "192.168.0.5"
        assert abs(got.validity_days - 90) < 1e-9
        assert got.key_bits == 96 and got.self_signed

    def test_validity_years(self):
        cert = CertificateInfo("x", "ca", 0.0, 20 * 365.25 * 86400.0)
        assert abs(cert.validity_years - 20) < 0.01

    def test_application_data(self):
        record = TlsRecord.application_data(128)
        decoded = TlsRecord.decode(record.encode())
        assert decoded.content_type is ContentType.APPLICATION_DATA
        assert len(decoded.fragment) == 128
        assert decoded.handshake() is None

    def test_iter_records(self):
        blob = (TlsRecord.client_hello(TlsVersion.TLS_1_2).encode()
                + TlsRecord.application_data(32).encode())
        records = list(iter_records(blob))
        assert [r.content_type for r in records] == [
            ContentType.HANDSHAKE, ContentType.APPLICATION_DATA,
        ]

    def test_iter_records_stops_on_garbage(self):
        blob = TlsRecord.application_data(8).encode() + b"\xff\xff\xff\xff\xff"
        assert len(list(iter_records(blob))) == 1

    def test_truncated(self):
        with pytest.raises(ValueError):
            TlsRecord.decode(b"\x16\x03")


class TestRtpStun:
    def test_rtp_roundtrip(self):
        packet = RtpPacket(97, 12, 48000, 0xCAFE, b"audio-frame", marker=True)
        decoded = RtpPacket.decode(packet.encode())
        assert decoded.payload_type == 97
        assert decoded.sequence == 12
        assert decoded.marker
        assert decoded.payload == b"audio-frame"

    def test_rtp_heuristic_accepts_dynamic_types(self):
        assert looks_like_rtp(RtpPacket(96, 1, 1, 1, b"x" * 20).encode())
        assert looks_like_rtp(RtpPacket(0, 1, 1, 1, b"x" * 20).encode())

    def test_rtp_heuristic_rejects(self):
        assert not looks_like_rtp(b"GET / HTTP/1.1\r\n")
        assert not looks_like_rtp(b"\x80")  # too short

    def test_rtp_rejects_wrong_version(self):
        raw = bytearray(RtpPacket(96, 1, 1, 1).encode())
        raw[0] = 0x40  # version 1
        with pytest.raises(ValueError):
            RtpPacket.decode(bytes(raw))

    def test_stun_roundtrip(self):
        message = StunMessage(BINDING_REQUEST, b"tttttttttttt", b"")
        decoded = StunMessage.decode(message.encode())
        assert decoded.message_type == BINDING_REQUEST
        assert decoded.transaction_id == b"tttttttttttt"

    def test_stun_magic_cookie_checked(self):
        raw = bytearray(StunMessage(transaction_id=b"x" * 12).encode())
        raw[4] ^= 0xFF
        with pytest.raises(ValueError):
            StunMessage.decode(bytes(raw))

    def test_stun_heuristic(self):
        assert looks_like_stun(StunMessage(transaction_id=b"x" * 12).encode())
        assert not looks_like_stun(RtpPacket(96, 1, 1, 1, b"payload").encode())

    def test_stun_bad_transaction_length(self):
        with pytest.raises(ValueError):
            StunMessage(transaction_id=b"short").encode()
