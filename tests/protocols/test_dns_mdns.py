"""Unit tests for the DNS wire codec and mDNS helpers."""

import pytest

from repro.protocols.dns import (
    CLASS_IN,
    DnsMessage,
    DnsQuestion,
    DnsRecord,
    DnsType,
    decode_name,
    encode_name,
)
from repro.protocols.mdns import (
    ServiceAdvertisement,
    hue_instance_name,
    mdns_query,
    mdns_response,
    reverse_v6_name,
    spotify_connect_path,
)


class TestNameCodec:
    def test_simple_roundtrip(self):
        wire = encode_name("device.local")
        name, offset = decode_name(wire, 0)
        assert name == "device.local"
        assert offset == len(wire)

    def test_root_name(self):
        assert encode_name("") == b"\x00"
        assert decode_name(b"\x00", 0) == ("", 1)

    def test_compression_pointer(self):
        compression = {}
        first = encode_name("a.example.local", compression, 0)
        second = encode_name("b.example.local", compression, len(first))
        # second should reuse "example.local" via a pointer -> shorter
        assert len(second) < len(encode_name("b.example.local"))
        blob = first + second
        name, _ = decode_name(blob, len(first))
        assert name == "b.example.local"

    def test_pointer_loop_detected(self):
        # A pointer pointing at itself must not hang.
        blob = b"\xc0\x00"
        with pytest.raises(ValueError):
            decode_name(blob, 0)

    def test_label_too_long(self):
        with pytest.raises(ValueError):
            encode_name("x" * 64 + ".local")

    def test_truncated(self):
        with pytest.raises(ValueError):
            decode_name(b"\x05ab", 0)


class TestRecords:
    def test_a_record(self):
        record = DnsRecord.a("host.local", "192.168.10.5")
        assert record.address() == "192.168.10.5"
        assert record.cache_flush

    def test_aaaa_record(self):
        record = DnsRecord.aaaa("host.local", "fe80::1")
        assert record.address() == "fe80::1"

    def test_ptr_record(self):
        record = DnsRecord.ptr("_hue._tcp.local", "Philips Hue - 685F61._hue._tcp.local")
        assert record.ptr_target() == "Philips Hue - 685F61._hue._tcp.local"

    def test_txt_record_roundtrip(self):
        record = DnsRecord.txt("x.local", {"bridgeid": "001788FFFE685F61", "modelid": "BSB002"})
        entries = record.txt_entries()
        assert entries["bridgeid"] == "001788FFFE685F61"
        assert entries["modelid"] == "BSB002"

    def test_empty_txt(self):
        record = DnsRecord.txt("x.local", {})
        assert record.txt_entries() == {}

    def test_srv_record(self):
        record = DnsRecord.srv("instance._hue._tcp.local", "hub.local", 443)
        assert record.srv_target() == ("hub.local", 443)

    def test_address_on_wrong_type(self):
        assert DnsRecord.ptr("a", "b").address() is None
        assert DnsRecord.a("a", "1.2.3.4").ptr_target() is None


class TestMessage:
    def test_query_roundtrip(self):
        message = DnsMessage(transaction_id=99)
        message.questions.append(DnsQuestion("_googlecast._tcp.local", DnsType.PTR))
        decoded = DnsMessage.decode(message.encode())
        assert decoded.transaction_id == 99
        assert not decoded.is_response
        assert decoded.questions[0].name == "_googlecast._tcp.local"
        assert decoded.questions[0].qtype == DnsType.PTR

    def test_qu_bit_roundtrip(self):
        message = DnsMessage()
        message.questions.append(DnsQuestion("x.local", DnsType.ANY, unicast_response=True))
        decoded = DnsMessage.decode(message.encode())
        assert decoded.questions[0].unicast_response
        assert decoded.questions[0].qclass == CLASS_IN

    def test_response_with_all_sections(self):
        message = DnsMessage(is_response=True, authoritative=True)
        message.answers.append(DnsRecord.ptr("_s._tcp.local", "i._s._tcp.local"))
        message.authorities.append(DnsRecord.a("ns.local", "192.168.10.1"))
        message.additionals.append(DnsRecord.a("i.local", "192.168.10.2"))
        decoded = DnsMessage.decode(message.encode())
        assert decoded.is_response and decoded.authoritative
        assert len(decoded.answers) == 1
        assert len(decoded.authorities) == 1
        assert len(decoded.additionals) == 1

    def test_compressed_encoding_smaller(self):
        message = DnsMessage(is_response=True)
        for index in range(5):
            message.answers.append(
                DnsRecord.ptr("_hue._tcp.local", f"instance-{index}._hue._tcp.local")
            )
        assert len(message.encode(compress=True)) < len(message.encode(compress=False))

    def test_compressed_ptr_rdata_decodes(self):
        message = DnsMessage(is_response=True)
        message.answers.append(DnsRecord.ptr("_hue._tcp.local", "bridge._hue._tcp.local"))
        decoded = DnsMessage.decode(message.encode(compress=True))
        assert decoded.answers[0].ptr_target() == "bridge._hue._tcp.local"

    def test_truncated(self):
        with pytest.raises(ValueError):
            DnsMessage.decode(b"\x00\x01")


class TestServiceAdvertisement:
    def _advert(self):
        return ServiceAdvertisement(
            service_type="_hue._tcp.local",
            instance_name="Philips Hue - 685F61",
            hostname="Philips-hue.local",
            port=443,
            address="192.168.10.12",
            txt={"bridgeid": "001788FFFE685F61"},
            address_v6="fe80::217:88ff:fe68:5f61",
        )

    def test_roundtrip(self):
        message = self._advert().to_response()
        parsed = ServiceAdvertisement.from_response(DnsMessage.decode(message.encode()))
        assert len(parsed) == 1
        advert = parsed[0]
        assert advert.instance_name == "Philips Hue - 685F61"
        assert advert.hostname == "Philips-hue.local"
        assert advert.port == 443
        assert advert.address == "192.168.10.12"
        assert advert.address_v6 == "fe80::217:88ff:fe68:5f61"

    def test_merged_response(self):
        adverts = [self._advert(), ServiceAdvertisement(
            "_airplay._tcp.local", "Apple TV", "appletv.local", 7000, "192.168.10.13")]
        message = mdns_response(adverts)
        parsed = ServiceAdvertisement.from_response(DnsMessage.decode(message.encode()))
        assert {advert.service_type for advert in parsed} == {
            "_hue._tcp.local", "_airplay._tcp.local"
        }

    def test_query_builder(self):
        message = mdns_query(["_a._tcp.local", "_b._tcp.local"], unicast_response=True)
        assert len(message.questions) == 2
        assert all(question.unicast_response for question in message.questions)


class TestNamingSchemes:
    def test_hue_instance_embeds_mac_suffix(self):
        assert hue_instance_name("00:17:88:68:5f:61") == "Philips Hue - 685F61"

    def test_spotify_zeroconf_path(self):
        path = spotify_connect_path("00:17:88:68:5f:61", "dev42", "session-uuid")
        assert "001788685f61" in path
        assert "dev42" in path and "session-uuid" in path

    def test_reverse_v6_name_contains_mac_nibbles(self):
        name = reverse_v6_name("00:17:88:68:5f:61")
        assert name.endswith(".ip6.arpa")
        # The Table 5 example: nibbles of the EUI-64 in reverse.
        assert name.startswith("1.6.F.5.8.6.E.F.F.F.8.8.7.1.2.0")
