"""Unit tests for SSDP, DHCP, CoAP, and NetBIOS codecs."""

import pytest

from repro.protocols.coap import CoapCode, CoapMessage, CoapType
from repro.protocols.dhcp import DhcpMessage, DhcpMessageType, DhcpOption
from repro.protocols.netbios import (
    NetbiosNsQuery,
    decode_netbios_name,
    encode_netbios_name,
)
from repro.protocols.ssdp import (
    SsdpMessage,
    SsdpMethod,
    ST_ALL,
    ST_IGD,
    ST_ROOT_DEVICE,
    device_description_xml,
)


class TestSsdp:
    def test_msearch_roundtrip(self):
        message = SsdpMessage.msearch(ST_ALL, mx=5, user_agent="WebOS/1.5")
        decoded = SsdpMessage.decode(message.encode())
        assert decoded.method is SsdpMethod.MSEARCH
        assert decoded.search_target == ST_ALL
        assert decoded.headers["USER-AGENT"] == "WebOS/1.5"
        assert decoded.headers["MAN"] == '"ssdp:discover"'

    def test_notify_roundtrip(self):
        message = SsdpMessage.notify(
            location="http://192.168.10.5:49152/desc.xml",
            notification_type=ST_ROOT_DEVICE,
            usn="uuid:abc::upnp:rootdevice",
            server="Linux UPnP/1.0",
        )
        decoded = SsdpMessage.decode(message.encode())
        assert decoded.method is SsdpMethod.NOTIFY
        assert decoded.location == "http://192.168.10.5:49152/desc.xml"
        assert decoded.headers["NTS"] == "ssdp:alive"

    def test_response_roundtrip(self):
        message = SsdpMessage.response(
            "http://x/desc.xml", ST_ROOT_DEVICE,
            "uuid:device_3_0-AMC020SC43PJ749D66::upnp:rootdevice",
            "Linux, UPnP/1.0, Private UPnP SDK",
        )
        decoded = SsdpMessage.decode(message.encode())
        assert decoded.method is SsdpMethod.RESPONSE
        assert decoded.uuid() == "device_3_0-AMC020SC43PJ749D66"
        assert decoded.server == "Linux, UPnP/1.0, Private UPnP SDK"

    def test_uuid_absent(self):
        message = SsdpMessage.msearch()
        assert message.uuid() is None

    def test_rejects_non_ssdp(self):
        with pytest.raises(ValueError):
            SsdpMessage.decode(b"GET / HTTP/1.1\r\n\r\n")
        with pytest.raises(ValueError):
            SsdpMessage.decode(b"")

    def test_device_description_embeds_serial(self):
        xml = device_description_xml(
            "Cam", "Amcrest", "AMC020", "device_3_0", serial_number="9c:8e:cd:0a:33:1b"
        )
        assert "<serialNumber>9c:8e:cd:0a:33:1b</serialNumber>" in xml
        assert "<UDN>uuid:device_3_0</UDN>" in xml

    def test_igd_target_constant(self):
        assert "InternetGatewayDevice" in ST_IGD


class TestDhcp:
    def test_discover_roundtrip(self):
        message = DhcpMessage.discover(
            "50:c7:bf:01:02:03", 0xDEAD, hostname="HS110",
            vendor_class="udhcp 1.19.4", parameter_request=[1, 3, 6, 12, 15, 69, 17],
        )
        decoded = DhcpMessage.decode(message.encode())
        assert decoded.message_type is DhcpMessageType.DISCOVER
        assert decoded.hostname == "HS110"
        assert decoded.vendor_class == "udhcp 1.19.4"
        # Deprecated options (SMTP 69, root path 17) survive the trip.
        assert 69 in decoded.parameter_request_list
        assert 17 in decoded.parameter_request_list

    def test_request_roundtrip(self):
        message = DhcpMessage.request(
            "50:c7:bf:01:02:03", 1, requested_ip="192.168.10.50",
            server_ip="192.168.10.1",
        )
        decoded = DhcpMessage.decode(message.encode())
        assert decoded.message_type is DhcpMessageType.REQUEST
        assert decoded.options[DhcpOption.REQUESTED_IP] == bytes([192, 168, 10, 50])

    def test_reply_ack(self):
        request = DhcpMessage.request("50:c7:bf:01:02:03", 7, "192.168.10.50", "192.168.10.1")
        reply = DhcpMessage.reply(
            request, DhcpMessageType.ACK, your_ip="192.168.10.50",
            server_ip="192.168.10.1", router="192.168.10.1", dns_server="192.168.10.1",
        )
        decoded = DhcpMessage.decode(reply.encode())
        assert decoded.op == 2
        assert decoded.message_type is DhcpMessageType.ACK
        assert decoded.your_ip == "192.168.10.50"
        assert decoded.transaction_id == 7

    def test_client_mac_preserved(self):
        message = DhcpMessage.discover("9c:8e:cd:0a:33:1b", 1)
        assert str(DhcpMessage.decode(message.encode()).client_mac) == "9c:8e:cd:0a:33:1b"

    def test_missing_cookie_rejected(self):
        raw = bytearray(DhcpMessage.discover("9c:8e:cd:0a:33:1b", 1).encode())
        raw[236:240] = b"\x00\x00\x00\x00"
        with pytest.raises(ValueError):
            DhcpMessage.decode(bytes(raw))

    def test_truncated(self):
        with pytest.raises(ValueError):
            DhcpMessage.decode(b"\x01" * 50)

    def test_no_hostname(self):
        message = DhcpMessage.discover("9c:8e:cd:0a:33:1b", 1)
        assert DhcpMessage.decode(message.encode()).hostname is None


class TestCoap:
    def test_get_roundtrip(self):
        message = CoapMessage.get("/oic/res", message_id=321)
        decoded = CoapMessage.decode(message.encode())
        assert decoded.code == CoapCode.GET
        assert decoded.path == "/oic/res"
        assert decoded.message_id == 321

    def test_payload_marker(self):
        message = CoapMessage(CoapCode.POST, 1, uri_path=["x"], payload=b"\x01\x02")
        decoded = CoapMessage.decode(message.encode())
        assert decoded.payload == b"\x01\x02"
        assert decoded.path == "/x"

    def test_token_roundtrip(self):
        message = CoapMessage(CoapCode.GET, 5, token=b"\xaa\xbb")
        assert CoapMessage.decode(message.encode()).token == b"\xaa\xbb"

    def test_long_segment_extended_option(self):
        long_segment = "a" * 20
        message = CoapMessage.get(f"/{long_segment}")
        assert CoapMessage.decode(message.encode()).uri_path == [long_segment]

    def test_token_too_long(self):
        with pytest.raises(ValueError):
            CoapMessage(CoapCode.GET, 1, token=b"\x00" * 9).encode()

    def test_types(self):
        message = CoapMessage(CoapCode.GET, 1, coap_type=CoapType.NON_CONFIRMABLE)
        assert CoapMessage.decode(message.encode()).coap_type is CoapType.NON_CONFIRMABLE

    def test_truncated(self):
        with pytest.raises(ValueError):
            CoapMessage.decode(b"\x40\x01")


class TestNetbios:
    def test_wildcard_encoding_is_ck_string(self):
        encoded = encode_netbios_name("*")
        # The famous Table 5 payload: CK then 30 'A's
        assert encoded == "CK" + "A" * 30

    def test_name_roundtrip(self):
        for name in ("*", "WORKGROUP", "MYHOST"):
            assert decode_netbios_name(encode_netbios_name(name)) == name.upper() if name != "*" else "*"

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            decode_netbios_name("CKAA")

    def test_decode_rejects_bad_chars(self):
        with pytest.raises(ValueError):
            decode_netbios_name("Z" * 32)

    def test_query_roundtrip(self):
        query = NetbiosNsQuery()
        decoded = NetbiosNsQuery.decode(query.encode())
        assert decoded.name == "*"
        assert decoded.is_wildcard_status_query

    def test_query_wire_contains_ck_prefix(self):
        wire = NetbiosNsQuery().encode()
        assert b"CKAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA" in wire

    def test_non_wildcard_query(self):
        query = NetbiosNsQuery(name="FILESRV", qtype=0x0020)
        decoded = NetbiosNsQuery.decode(query.encode())
        assert decoded.name == "FILESRV"
        assert not decoded.is_wildcard_status_query

    def test_truncated(self):
        with pytest.raises(ValueError):
            NetbiosNsQuery.decode(b"\x00\x01")
