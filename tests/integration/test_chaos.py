"""Chaos integration: the pipeline under a fault plan, and the
zero-fault equivalence invariant that protects every other test."""

import pytest

from repro.core.pipeline import StudyPipeline
from repro.devices.behaviors import build_testbed
from repro.faults import EMPTY_PLAN, FaultInjector, FaultPlan

BOUNDED_LOSS = FaultPlan.from_dict({
    "name": "bounded-loss",
    "links": [{"src": "*", "dst": "*", "loss": 0.03, "corrupt": 0.02,
               "truncate": 0.01, "duplicate": 0.01,
               "delay": {"probability": 0.02}}],
    "discovery": {"probability": 0.15, "protocols": ["mdns", "ssdp", "tuyalp"]},
    "flaps": [{"device": "tuya-camera-1", "start": 20.0, "duration": 15.0}],
    "unresponsive_ports": [
        {"device": "philips-hue-hub-1", "transport": "tcp", "port": 80},
    ],
})


class TestZeroFaultEquivalence:
    def test_empty_plan_is_byte_identical_on_the_real_lab(self):
        """Installing an EMPTY_PLAN injector must not change one byte of
        the full testbed's capture — the invariant that lets the fault
        layer ship inside Lan.transmit without risking the baseline."""
        captures = []
        for install in (False, True):
            testbed = build_testbed(seed=11)
            if install:
                injector = FaultInjector(EMPTY_PLAN, seed=11)
                injector.install(testbed.lan)
            testbed.run(90.0)
            captures.append(list(testbed.lan.capture.records))
        assert captures[0] == captures[1]

class TestChaosRun:
    @pytest.fixture(scope="class")
    def chaos_report(self):
        pipeline = StudyPipeline(seed=7, passive_duration=60.0,
                                 app_sample_size=4,
                                 fault_plan=BOUNDED_LOSS)
        return pipeline.run()

    def test_bounded_loss_run_completes_end_to_end(self, chaos_report):
        report = chaos_report
        assert report.capture_packets > 500
        assert report.census.passive
        assert report.device_graph is not None
        assert report.threat is not None
        assert report.scan_report.hosts
        assert report.complete  # degradation, not failure, under bounded loss

    def test_fault_summary_attached_and_nonzero(self, chaos_report):
        summary = chaos_report.fault_summary
        assert summary is not None
        assert summary["plan"] == "bounded-loss"
        assert summary["total"] > 0
        assert summary["counts"]["loss"] > 0

    def test_same_seed_and_plan_reproduce_the_schedule(self):
        counts = []
        for _ in range(2):
            testbed = build_testbed(seed=9)
            injector = FaultInjector(BOUNDED_LOSS, seed=9)
            injector.install(testbed.lan)
            testbed.run(60.0)
            counts.append((dict(injector.counts),
                           list(testbed.lan.capture.records)))
        assert counts[0][0] == counts[1][0]
        assert counts[0][1] == counts[1][1]


def _explode(*_args, **_kwargs):
    raise RuntimeError("synthetic analysis crash")


class TestAnalysisIsolation:
    @pytest.fixture(scope="class")
    def small_index(self):
        """A short real capture + maps for driving _run_analyses directly."""
        testbed = build_testbed(seed=3)
        testbed.run(30.0)
        from repro.core.responses import category_of_profile

        maps = {
            "macs": {str(node.mac): node.name for node in testbed.devices},
            "vendors": {node.name: node.vendor for node in testbed.devices},
            "categories": {node.name: category_of_profile(node.profile)
                           for node in testbed.devices},
        }
        return testbed.lan.capture.index(), maps

    def test_keep_going_isolates_the_failure(self, monkeypatch):
        import repro.core.pipeline as pipeline_module

        monkeypatch.setattr(pipeline_module, "build_device_graph", _explode)
        report = StudyPipeline(seed=3, passive_duration=30.0, app_sample_size=4,
                               deploy_honeypots=False).run()
        assert report.device_graph is None
        assert not report.complete
        assert [failure.analysis for failure in report.failures] == ["device_graph"]
        assert "synthetic analysis crash" in report.failures[0].error
        assert "RuntimeError" in report.failures[0].traceback
        assert report.fault_summary is None  # no plan installed
        # The siblings all completed despite the crash.
        assert report.exposure is not None
        assert report.responses is not None
        assert report.periodicity is not None
        assert report.crossval is not None
        assert report.threat is not None

    def test_serial_path_isolates_too(self, monkeypatch, small_index):
        import repro.core.pipeline as pipeline_module

        index, maps = small_index
        monkeypatch.setenv("REPRO_ANALYSIS_PARALLEL", "0")
        monkeypatch.setattr(pipeline_module, "build_device_graph", _explode)
        results, failures = StudyPipeline(seed=3)._run_analyses(
            index, maps, [], None)
        assert results["device_graph"] is None
        assert [failure.analysis for failure in failures] == ["device_graph"]
        assert results["crossval"] is not None
        assert results["threat"] is not None

    def test_fail_fast_reraises(self, monkeypatch, small_index):
        import repro.core.pipeline as pipeline_module

        index, maps = small_index
        monkeypatch.setattr(pipeline_module, "build_device_graph", _explode)
        pipeline = StudyPipeline(seed=3, keep_going=False)
        with pytest.raises(RuntimeError, match="synthetic analysis crash"):
            pipeline._run_analyses(index, maps, [], None)


class TestChaosCli:
    def test_study_with_fault_plan_and_partial_render(self, tmp_path, capsys,
                                                      monkeypatch):
        """The CLI ride: --fault-plan loads, the run completes, and the
        report renders (including the fault summary line)."""
        from repro.cli import main

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(BOUNDED_LOSS.to_json())
        code = main(["study", "--seed", "7", "--duration", "25", "--apps", "4",
                     "--fault-plan", str(plan_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "fault plan 'bounded-loss'" in captured.out
        assert "faults injected" in captured.out

    def test_invalid_plan_is_rejected_before_the_run(self, tmp_path, capsys):
        from repro.cli import main

        plan_path = tmp_path / "bad.json"
        plan_path.write_text('{"links": [{"loss": 2.0}]}')
        code = main(["study", "--fault-plan", str(plan_path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid plan" in captured.err

    def test_missing_plan_file_is_reported(self, capsys):
        from repro.cli import main

        code = main(["study", "--fault-plan", "/nonexistent/plan.json"])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot read" in captured.err
