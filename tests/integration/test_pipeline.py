"""End-to-end integration tests: the full study pipeline and artifacts."""

import pytest

from repro.core.exfiltration import audit_app_runs, sdk_case_studies
from repro.core.fingerprint import fingerprint_households
from repro.core.pipeline import StudyPipeline
from repro.report.tables import (
    render_comparison,
    render_figure2,
    render_figure3,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)


@pytest.fixture(scope="module")
def study():
    pipeline = StudyPipeline(seed=7, passive_duration=600.0, app_sample_size=40)
    return pipeline.run()


class TestPipeline:
    def test_all_artifacts_produced(self, study):
        assert study.capture_packets > 1000
        assert study.census.passive
        assert study.device_graph.graph.number_of_nodes() == 93
        assert study.exposure.cells
        assert study.responses.per_device
        assert study.periodicity.detections
        assert study.crossval.total_units > 0
        assert study.threat.findings
        assert study.scan_report.hosts
        assert study.exfiltration.total_apps == 40
        assert study.honeypot_contacts > 0
        # No fault plan: nothing failed, no chaos artifacts attached.
        assert study.complete and study.failures == []
        assert study.fault_summary is None

    def test_scans_do_not_pollute_passive_capture(self, study):
        # After scans/apps, capture records keep accumulating only from
        # lab traffic; the count matches what analyses consumed.
        assert study.capture_packets >= 1000

    def test_determinism(self):
        a = StudyPipeline(seed=13, passive_duration=120.0, app_sample_size=12,
                          deploy_honeypots=False).run()
        b = StudyPipeline(seed=13, passive_duration=120.0, app_sample_size=12,
                          deploy_honeypots=False).run()
        assert a.capture_packets == b.capture_packets
        assert a.device_graph.summary() == b.device_graph.summary()
        assert a.crossval.total_units == b.crossval.total_units

    def test_exfiltration_summary(self, study):
        summary = study.exfiltration.summary()
        assert summary["total_apps"] == 40
        # The named case-study apps always run, so these are non-zero.
        assert summary["device_mac_relaying_iot_apps"] >= 2
        assert summary["side_channel_apps"] >= 1
        assert summary["downlink_mac_apps"] >= 1

    def test_sdk_case_studies_present(self, study):
        studies = sdk_case_studies(study.exfiltration)
        assert "innosdk" in studies
        assert studies["innosdk"]["endpoints"] == ["gw.innotechworld.com"]
        assert "AppDynamics" in studies
        assert studies["AppDynamics"]["base64_encoded"]


class TestFingerprintIntegration:
    def test_small_fingerprint_report(self):
        report = fingerprint_households(seed=23)
        assert report.dataset_households == 3860
        assert report.rows[0].identifiers == "N/A"
        uuid_row = report.row_for("uuid")
        assert uuid_row is not None
        assert uuid_row.unique_pct > 85.0
        assert uuid_row.entropy > 8.0


class TestRendering:
    def test_all_tables_render(self, study):
        from repro.devices.catalog import build_catalog

        outputs = [
            render_figure2(study.census),
            render_table1(study.exposure),
            render_table3(build_catalog()),
            render_table4(study.responses),
            render_figure3(study.crossval),
            render_comparison([("devices communicating", 43,
                                study.device_graph.summary()["devices_communicating"])]),
        ]
        for text in outputs:
            assert isinstance(text, str) and len(text) > 40

    def test_table2_renders(self):
        report = fingerprint_households(seed=23)
        text = render_table2(report)
        assert "uuid" in text and "ent" in text


class TestPcapInterop:
    def test_capture_survives_pcap_roundtrip(self, tmp_path):
        """Write the capture to disk as pcap, read it back, re-run an
        analysis, and get identical results — the artifact format works."""
        from repro.core.protocol_census import census_from_capture
        from repro.devices.behaviors import build_testbed
        from repro.net.decode import decode_frame
        from repro.net.pcap import read_pcap

        testbed = build_testbed(seed=21)
        testbed.run(180.0)
        macs = {str(node.mac): node.name for node in testbed.devices}
        direct = testbed.lan.capture.decoded()

        path = tmp_path / "lab.pcap"
        testbed.lan.capture.write_pcap(path)
        reloaded = [decode_frame(p.data, p.timestamp) for p in read_pcap(path)]
        assert len(reloaded) == len(direct)

        census_direct = census_from_capture(direct, macs)
        census_reloaded = census_from_capture(reloaded, macs)
        assert {k: v for k, v in census_direct.passive.items()} == {
            k: v for k, v in census_reloaded.passive.items()
        }
