"""Pipeline observability smoke tests: spans, counters, and overhead.

The contract this file pins down: with a live context, every
``StudyPipeline.STAGES`` entry emits exactly one span carrying both
clocks, the per-protocol capture counters sum to
``StudyReport.capture_packets``, and a run without observability
behaves exactly as before (no telemetry, no metrics).
"""

import json

import pytest

from repro.core.pipeline import StudyPipeline
from repro.obs import enable_observability


@pytest.fixture(scope="module")
def observed_run():
    obs = enable_observability()
    pipeline = StudyPipeline(seed=11, passive_duration=120.0, app_sample_size=8,
                             obs=obs)
    report = pipeline.run()
    return obs, report


class TestStageSpans:
    def test_exactly_one_span_per_stage(self, observed_run):
        obs, _ = observed_run
        for stage in StudyPipeline.STAGES:
            spans = obs.tracer.find(f"pipeline.{stage}")
            assert len(spans) == 1, f"stage {stage}: {len(spans)} spans"

    def test_spans_carry_both_clocks(self, observed_run):
        obs, _ = observed_run
        for stage in StudyPipeline.STAGES:
            span = obs.tracer.find(f"pipeline.{stage}")[0]
            assert span.wall_duration is not None and span.wall_duration >= 0
            assert span.sim_duration is not None
        passive = obs.tracer.find("pipeline.passive_capture")[0]
        assert passive.sim_duration == 120.0

    def test_stage_spans_nest_under_run(self, observed_run):
        obs, _ = observed_run
        run_span = obs.tracer.find("pipeline.run")[0]
        child_names = {child.name for child in run_span.children}
        assert child_names == {f"pipeline.{s}" for s in StudyPipeline.STAGES}


class TestCounters:
    def test_capture_counters_match_report(self, observed_run):
        obs, report = observed_run
        counter = obs.metrics.get("capture_packets_total")
        assert counter is not None
        assert counter.total() == report.capture_packets
        assert report.capture_packets > 0

    def test_per_protocol_counters_nonzero(self, observed_run):
        obs, _ = observed_run
        counter = obs.metrics.get("capture_packets_total")
        protocols = {labels[0][1] for labels, _ in counter._sample_items()}
        assert {"arp", "mdns", "ssdp"} <= protocols

    def test_simulator_and_lan_metrics(self, observed_run):
        obs, _ = observed_run
        assert obs.metrics.get("sim_events_total").total() > 0
        assert obs.metrics.get("sim_callback_seconds").count() > 0
        assert obs.metrics.get("lan_frames_delivered_total").total() > 0

    def test_honeypot_contacts_match(self, observed_run):
        obs, report = observed_run
        counter = obs.metrics.get("honeypot_contacts_total")
        assert counter.total() == report.honeypot_contacts

    def test_scan_and_app_metrics(self, observed_run):
        obs, report = observed_run
        probes = obs.metrics.get("scan_probes_total")
        assert probes.value(kind="tcp") > 0
        assert probes.value(kind="udp") > 0
        # the 10 named case-study apps always run, so the counter follows
        # the audit's own total rather than app_sample_size
        assert obs.metrics.get("apps_runs_total").total() == \
            report.exfiltration.total_apps > 0
        assert obs.metrics.get("pipeline_stage_seconds").count(stage="build") == 1


class TestTelemetryField:
    def test_report_carries_telemetry(self, observed_run):
        _, report = observed_run
        assert report.telemetry is not None
        assert set(report.telemetry) == {"stages", "metrics", "spans"}
        assert set(report.telemetry["stages"]) == set(StudyPipeline.STAGES)
        json.dumps(report.telemetry)  # must be JSON-safe

    def test_disabled_run_has_no_telemetry(self):
        report = StudyPipeline(seed=11, passive_duration=60.0, app_sample_size=4,
                               deploy_honeypots=False).run()
        assert report.telemetry is None

    def test_observed_run_stays_deterministic(self):
        """Instrumentation must not perturb the simulation."""
        plain = StudyPipeline(seed=29, passive_duration=60.0, app_sample_size=4,
                              deploy_honeypots=False).run()
        observed = StudyPipeline(seed=29, passive_duration=60.0, app_sample_size=4,
                                 deploy_honeypots=False,
                                 obs=enable_observability()).run()
        assert observed.capture_packets == plain.capture_packets
        assert observed.device_graph.summary() == plain.device_graph.summary()


class TestDecodeOnceTelemetry:
    def test_decode_index_span_nests_under_passive(self, observed_run):
        obs, _ = observed_run
        spans = obs.tracer.find("capture.decode_index")
        assert len(spans) == 1
        assert spans[0].parent.name == "pipeline.passive_capture"

    def test_analysis_spans_nest_under_analysis_stage(self, observed_run):
        obs, _ = observed_run
        stage = obs.tracer.find("pipeline.analysis")[0]
        names = {child.name for child in stage.children}
        assert {"analysis.device_graph", "analysis.exposure",
                "analysis.responses", "analysis.periodicity",
                "analysis.crossval", "analysis.threat"} <= names
        for child in stage.children:
            if child.name.startswith("analysis."):
                assert child.wall_duration is not None

    def test_decode_cache_counters(self, observed_run):
        obs, report = observed_run
        misses = obs.metrics.get("capture_decode_cache_misses_total")
        assert misses is not None
        # Every captured frame was decoded exactly once.
        assert misses.total() == report.capture_packets
        chunks = obs.metrics.get("capture_decode_chunks_total")
        assert chunks is not None and chunks.total() >= 1

    def test_analysis_pool_metrics(self, observed_run):
        obs, _ = observed_run
        tasks = obs.metrics.get("pipeline_analysis_tasks_total")
        assert tasks is not None and tasks.total() == 6
        workers = obs.metrics.get("pipeline_analysis_pool_workers")
        assert workers is not None and workers.value() >= 1


class TestSerialParallelEquivalence:
    def test_serial_fanout_produces_identical_artifacts(self, monkeypatch):
        """REPRO_ANALYSIS_PARALLEL=0 must not change any artifact."""
        parallel = StudyPipeline(seed=31, passive_duration=60.0,
                                 app_sample_size=4,
                                 deploy_honeypots=False).run()
        monkeypatch.setenv("REPRO_ANALYSIS_PARALLEL", "0")
        serial = StudyPipeline(seed=31, passive_duration=60.0,
                               app_sample_size=4,
                               deploy_honeypots=False).run()
        assert serial.capture_packets == parallel.capture_packets
        assert serial.device_graph.summary() == parallel.device_graph.summary()
        assert serial.exposure.cells == parallel.exposure.cells
        assert serial.exposure.examples == parallel.exposure.examples
        assert serial.responses.by_category() == parallel.responses.by_category()
        assert [
            (d.device, d.destination, d.protocol, d.is_periodic, d.period)
            for d in serial.periodicity.detections
        ] == [
            (d.device, d.destination, d.protocol, d.is_periodic, d.period)
            for d in parallel.periodicity.detections
        ]
        assert serial.crossval.confusion == parallel.crossval.confusion
        assert serial.threat.plaintext_http_devices == \
            parallel.threat.plaintext_http_devices
        assert serial.census.passive == parallel.census.passive
