"""Tests for the crowdsourced dataset: schema, generation, entropy, labels."""

import statistics

import pytest

from repro.inspector.entropy import (
    analyze_dataset,
    device_identifiers,
    extract_macs,
    extract_names,
    extract_uuids,
)
from repro.inspector.generate import ExposureClass, generate_dataset
from repro.inspector.labels import DeviceLabeler, _fuzzy_equal
from repro.inspector.schema import hashed_device_id


class TestSchema:
    def test_device_id_is_hmac(self):
        salt_a, salt_b = b"a" * 16, b"b" * 16
        mac = "d8:31:34:01:02:03"
        id_a = hashed_device_id(mac, salt_a)
        assert id_a == hashed_device_id(mac, salt_a)  # deterministic per salt
        assert id_a != hashed_device_id(mac, salt_b)  # salted per user
        assert len(id_a) == 64  # SHA-256 hex

    def test_device_id_not_reversible_trivially(self):
        assert "d8:31:34" not in hashed_device_id("d8:31:34:01:02:03", b"s" * 16)


class TestExtraction:
    def test_names(self):
        assert extract_names("Roku 3 - Jordan's Room") == {"Jordan"}
        assert extract_names("no names here") == set()
        assert extract_names("Alex's TV and Sam's Speaker") == {"Alex", "Sam"}

    def test_uuids(self):
        text = "USN: uuid:12345678-1234-5678-9abc-def012345678::rootdevice"
        assert extract_uuids(text) == {"12345678-1234-5678-9abc-def012345678"}
        assert extract_uuids("uuid:not-a-uuid") == set()

    def test_macs_with_separators(self):
        assert extract_macs("serial d8:31:34:0a:0b:0c here", "d8:31:34") == {"d8:31:34:0a:0b:0c"}
        assert extract_macs("serial D8-31-34-0A-0B-0C", "d8:31:34") == {"d8:31:34:0a:0b:0c"}

    def test_bare_macs(self):
        assert extract_macs("token d831340a0b0c end", "d8:31:34") == {"d8:31:34:0a:0b:0c"}

    def test_oui_validation_filters_false_positives(self):
        # A hex-looking token with the wrong OUI is rejected...
        assert extract_macs("deadbeefcafe", "d8:31:34") == set()
        # ...unless validation is off (the ablation).
        assert extract_macs("deadbeefcafe", "d8:31:34", validate_oui=False)

    def test_device_identifiers_integration(self, inspector_dataset):
        devices = inspector_dataset.all_devices()
        exposing = [d for d in devices if device_identifiers(d)["uuid"]]
        assert exposing  # some products expose UUIDs


class TestGenerator:
    def test_marginals(self, inspector_dataset):
        ds = inspector_dataset
        assert ds.household_count == 400
        assert 1000 <= ds.device_count <= 1700
        counts = [h.device_count for h in ds.households]
        assert 2 <= statistics.median(counts) <= 4

    def test_deterministic(self):
        a = generate_dataset(seed=5, households=50, target_devices=160)
        b = generate_dataset(seed=5, households=50, target_devices=160)
        assert [d.device_id for d in a.all_devices()] == [d.device_id for d in b.all_devices()]

    def test_payloads_are_real_wire_format(self, inspector_dataset):
        from repro.protocols.dns import DnsMessage
        from repro.protocols.ssdp import SsdpMessage

        device = inspector_dataset.all_devices()[0]
        for payload in device.mdns_responses:
            assert DnsMessage.decode(payload).is_response
        for payload in device.ssdp_responses:
            SsdpMessage.decode(payload)

    def test_roku_anchor_households(self):
        ds = generate_dataset(seed=23, households=100, target_devices=330)
        rokus = [d for h in ds.households for d in h.devices if d.truth_vendor == "Roku"]
        assert rokus
        # The all-three product exposes name+uuid+mac in its payloads.
        exposing_all = [
            d for d in rokus
            if all(device_identifiers(d)[k] for k in ("name", "uuid", "mac"))
        ]
        assert exposing_all

    def test_flows_are_private(self, inspector_dataset):
        from repro.net.filters import is_private_conversation

        for household in inspector_dataset.households[:50]:
            for flow in household.flows:
                assert is_private_conversation(flow.src_ip, flow.dst_ip)

    def test_exposure_class_types(self):
        assert ExposureClass.ALL.types == {"name", "uuid", "mac"}
        assert ExposureClass.NONE.types == frozenset()


class TestEntropyAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze_dataset(generate_dataset(seed=23, households=600, target_devices=2000))

    def test_row_structure(self, analysis):
        rows = analysis.table_rows()
        assert rows[0][1] == "N/A"  # the none row first
        type_counts = [row[0] for row in rows]
        assert type_counts == sorted(type_counts)

    def test_uuid_row_dominates(self, analysis):
        uuid_row = analysis.rows.get(frozenset({"uuid"}))
        assert uuid_row is not None
        mac_row = analysis.rows.get(frozenset({"mac"}))
        assert uuid_row.household_count > (mac_row.household_count if mac_row else 0)

    def test_uniqueness_below_one(self, analysis):
        # Firmware-constant UUIDs/MACs create collisions: uniqueness in
        # (80%, 100%) like Table 2's 94.2%/94.4%.
        uuid_row = analysis.rows[frozenset({"uuid"})]
        assert 0.80 <= uuid_row.unique_household_fraction() <= 1.0

    def test_combination_entropy_is_sum(self, analysis):
        combo = frozenset({"uuid", "mac"})
        if combo in analysis.rows:
            assert abs(
                analysis.entropy_of_combination(combo)
                - (analysis.entropy_of("uuid") + analysis.entropy_of("mac"))
            ) < 1e-9

    def test_entropy_grows_with_distinct_values(self, analysis):
        assert analysis.entropy_of("uuid") > analysis.entropy_of("name")

    def test_oui_ablation_increases_mac_matches(self):
        ds = generate_dataset(seed=23, households=300, target_devices=1000)
        validated = analyze_dataset(ds, validate_oui=True)
        unvalidated = analyze_dataset(ds, validate_oui=False)
        def macs(analysis):
            return len(analysis.distinct_values.get("mac", ()))
        assert macs(unvalidated) >= macs(validated)


class TestLabeler:
    def test_fuzzy_matching(self):
        assert _fuzzy_equal("Roku", "R0ku")
        assert _fuzzy_equal("Philips", "Philipss")
        assert not _fuzzy_equal("Roku", "Sony")
        assert not _fuzzy_equal("", "Roku")

    def test_labeler_accuracy(self, inspector_dataset):
        labeler = DeviceLabeler.from_dataset(inspector_dataset)
        metrics = labeler.evaluate(inspector_dataset)
        # Appendix E labeled 24,998/25,033; vendor accuracy should be high.
        assert metrics["vendor_labeled"] > 0.95
        assert metrics["vendor_accuracy"] > 0.8
        assert metrics["category_accuracy"] > 0.9

    def test_user_label_beats_oui(self, inspector_dataset):
        labeler = DeviceLabeler.from_dataset(inspector_dataset)
        device = next(d for d in inspector_dataset.all_devices() if d.user_label_vendor)
        result = labeler.label_device(device)
        assert result.source.startswith("user-label")
        assert result.confidence >= 0.9

    def test_hostname_fallback(self, inspector_dataset):
        labeler = DeviceLabeler.from_dataset(inspector_dataset)
        device = next(d for d in inspector_dataset.all_devices() if not d.user_label_vendor)
        result = labeler.label_device(device)
        assert result.vendor is not None
