"""The decode-once cache and records view of :class:`ApCapture`.

Covers the tentpole contract: ``decoded()`` decodes each frame exactly
once, extends incrementally on new ``observe()`` calls, invalidates on
``clear()``; ``index()`` is rebuilt only when the capture grew; the
chunked-parallel decode path is byte-identical to the serial one; and
``records`` is a live read-only view, not a per-access copy.
"""

from __future__ import annotations

import pytest

from repro.net.ether import EtherType, EthernetFrame
from repro.net.ipv4 import Ipv4Packet
from repro.net.mac import MacAddress
from repro.net.udp import UdpDatagram
from repro.obs import enable_observability, use_obs
from repro.simnet.capture import ApCapture, RecordsView


def _frame(index: int) -> bytes:
    """A minimal UDP-in-IPv4 frame with a distinguishable payload."""
    datagram = UdpDatagram(src_port=1000 + index, dst_port=2000,
                           payload=f"payload-{index}".encode())
    ip = Ipv4Packet(src="192.168.10.10", dst="192.168.10.20",
                    protocol=17, payload=datagram.encode())
    return EthernetFrame(
        src=MacAddress("02:aa:00:00:00:01"),
        dst=MacAddress("02:aa:00:00:00:02"),
        ethertype=EtherType.IPV4,
        payload=ip.encode(),
    ).encode()


def _fill(capture: ApCapture, count: int, start: int = 0) -> None:
    for i in range(start, start + count):
        capture.observe(float(i), _frame(i))


class TestDecodeCache:
    def test_decoded_identity_across_calls(self):
        capture = ApCapture()
        _fill(capture, 5)
        first = capture.decoded()
        assert capture.decoded() is first  # memo: the very same list

    def test_incremental_extension(self):
        capture = ApCapture()
        _fill(capture, 3)
        packets = capture.decoded()
        before = list(packets)
        _fill(capture, 2, start=3)
        again = capture.decoded()
        assert again is packets  # extended in place, not rebuilt
        assert len(again) == 5
        assert again[:3] == before  # prefix untouched: not re-decoded
        assert [p.timestamp for p in again] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_clear_invalidates(self):
        capture = ApCapture()
        _fill(capture, 4)
        packets = capture.decoded()
        assert len(packets) == 4
        capture.clear()
        assert capture.decoded() == []
        _fill(capture, 2, start=10)
        assert [p.timestamp for p in capture.decoded()] == [10.0, 11.0]

    def test_per_mac_and_packets_of_reuse_cache(self):
        capture = ApCapture()
        _fill(capture, 4)
        cached = capture.decoded()
        sent = capture.packets_of("02:aa:00:00:00:01")
        assert all(any(p is c for c in cached) for p in sent)
        split = capture.per_mac()
        assert MacAddress("02:aa:00:00:00:01") in split
        assert MacAddress("02:aa:00:00:00:02") in split

    def test_parallel_decode_matches_serial(self):
        serial = ApCapture(parallel_threshold=0)
        parallel = ApCapture(parallel_threshold=1, decode_chunk_size=16,
                             decode_workers=4)
        _fill(serial, 100)
        _fill(parallel, 100)
        a = serial.decoded()
        b = parallel.decoded()
        assert len(a) == len(b) == 100
        assert [p.timestamp for p in a] == [p.timestamp for p in b]
        assert [p.udp.payload for p in a] == [p.udp.payload for p in b]

    def test_parallel_incremental_extension(self):
        capture = ApCapture(parallel_threshold=1, decode_chunk_size=8)
        _fill(capture, 30)
        packets = capture.decoded()
        _fill(capture, 30, start=30)
        assert capture.decoded() is packets
        assert [p.timestamp for p in packets] == [float(i) for i in range(60)]

    def test_index_cached_until_capture_grows(self):
        capture = ApCapture()
        _fill(capture, 5)
        index = capture.index()
        assert capture.index() is index  # unchanged capture: cache hit
        _fill(capture, 1, start=5)
        rebuilt = capture.index()
        assert rebuilt is not index
        assert len(rebuilt) == 6
        capture.clear()
        assert len(capture.index()) == 0

    def test_parallel_auto_disabled_on_small_machines(self, monkeypatch):
        """Default-config captures on <3 CPUs materialize serially."""
        import repro.simnet.capture as capture_module

        monkeypatch.delenv("REPRO_DECODE_PARALLEL_THRESHOLD", raising=False)
        monkeypatch.setattr(capture_module.os, "cpu_count", lambda: 1)
        monkeypatch.setattr(capture_module, "DEFAULT_PARALLEL_THRESHOLD", 10)
        obs = enable_observability()
        with use_obs(obs):
            capture = ApCapture(decode_chunk_size=8)
            assert not capture._parallel_explicit
            _fill(capture, 30)
            packets = capture.decoded()
        assert [p.timestamp for p in packets] == [float(i) for i in range(30)]
        snapshot = obs.metrics.to_dict()
        disabled = snapshot["capture_decode_parallel_disabled_total"]["samples"]
        assert sum(s["value"] for s in disabled) == 1
        chunks = snapshot["capture_decode_chunks_total"]["samples"]
        modes = {s["labels"]["mode"] for s in chunks}
        assert "serial" in modes and "parallel" not in modes

    def test_explicit_threshold_keeps_pool_on_small_machines(self, monkeypatch):
        """An explicit opt-in (ctor arg) overrides the CPU guard."""
        import repro.simnet.capture as capture_module

        monkeypatch.setattr(capture_module.os, "cpu_count", lambda: 1)
        obs = enable_observability()
        with use_obs(obs):
            capture = ApCapture(parallel_threshold=10, decode_chunk_size=8)
            assert capture._parallel_explicit
            _fill(capture, 30)
            packets = capture.decoded()
        assert [p.timestamp for p in packets] == [float(i) for i in range(30)]
        snapshot = obs.metrics.to_dict()
        assert "capture_decode_parallel_disabled_total" not in snapshot or sum(
            s["value"]
            for s in snapshot["capture_decode_parallel_disabled_total"]["samples"]
        ) == 0
        modes = {s["labels"]["mode"]
                 for s in snapshot["capture_decode_chunks_total"]["samples"]}
        assert "parallel" in modes

    def test_env_threshold_counts_as_explicit(self, monkeypatch):
        import repro.simnet.capture as capture_module

        monkeypatch.setenv("REPRO_DECODE_PARALLEL_THRESHOLD", "10")
        monkeypatch.setattr(capture_module.os, "cpu_count", lambda: 1)
        capture = ApCapture()
        assert capture._parallel_explicit
        assert capture.parallel_threshold == 10

    def test_cache_metrics(self):
        obs = enable_observability()
        with use_obs(obs):
            capture = ApCapture()
            _fill(capture, 10)
            capture.decoded()   # 10 misses
            capture.decoded()   # 10 hits
            _fill(capture, 5, start=10)
            capture.decoded()   # 10 hits + 5 misses
        snapshot = obs.metrics.to_dict()
        hits = snapshot["capture_decode_cache_hits_total"]["samples"]
        misses = snapshot["capture_decode_cache_misses_total"]["samples"]
        assert sum(s["value"] for s in hits) == 20
        assert sum(s["value"] for s in misses) == 15


class TestRecordsView:
    def test_records_is_live_view_not_copy(self):
        capture = ApCapture()
        view = capture.records
        assert isinstance(view, RecordsView)
        assert len(view) == 0
        _fill(capture, 3)
        assert len(view) == 3  # live: sees frames observed after creation

    def test_equality_with_lists_and_views(self):
        capture = ApCapture()
        _fill(capture, 2)
        view = capture.records
        assert view == list(view)
        assert view == capture.records
        assert view != []
        assert ApCapture().records == []

    def test_indexing_slicing_iteration(self):
        capture = ApCapture()
        _fill(capture, 4)
        view = capture.records
        assert view[0][0] == 0.0
        assert view[-1][0] == 3.0
        assert [t for t, _ in view] == [0.0, 1.0, 2.0, 3.0]
        assert isinstance(view[1:3], list) and len(view[1:3]) == 2

    def test_view_is_immutable(self):
        capture = ApCapture()
        _fill(capture, 2)
        view = capture.records
        with pytest.raises((TypeError, AttributeError)):
            view[0] = (9.0, b"")
        with pytest.raises(AttributeError):
            view.append((9.0, b""))
        with pytest.raises(TypeError):
            hash(view)

    def test_negative_indexing_and_step_slicing(self):
        capture = ApCapture()
        _fill(capture, 6)
        view = capture.records
        assert view[-1][0] == 5.0
        assert view[-6][0] == 0.0
        assert [t for t, _ in view[::2]] == [0.0, 2.0, 4.0]
        assert [t for t, _ in view[::-1]] == [5.0, 4.0, 3.0, 2.0, 1.0, 0.0]
        assert [t for t, _ in view[-3:]] == [3.0, 4.0, 5.0]
        assert [t for t, _ in view[4:1:-2]] == [4.0, 2.0]
        assert view[2:2] == []
        with pytest.raises(IndexError):
            view[6]
        with pytest.raises(IndexError):
            view[-7]

    def test_equality_against_plain_lists(self):
        capture = ApCapture()
        _fill(capture, 3)
        view = capture.records
        records = [(float(i), _frame(i)) for i in range(3)]
        assert view == records
        assert view == tuple(records)
        assert view != records[:-1]            # shorter
        assert view != records + [(9.0, b"")]  # longer
        assert view != [records[1], records[0], records[2]]  # reordered
        assert (view == object()) is False     # NotImplemented fallback
        assert view != 42
