"""Unit tests for LAN delivery semantics and node stack behaviour."""

import pytest

from repro.net.decode import decode_frame
from repro.net.icmp import IcmpType
from repro.net.tcp import TcpFlags, TcpSegment
from repro.simnet.capture import ApCapture
from repro.simnet.lan import Lan
from repro.simnet.node import Node
from repro.simnet.services import ServiceInfo, ServiceTable
from repro.simnet.simulator import Simulator


def _inbox(node):
    packets = []
    node.add_raw_hook(lambda _n, p: packets.append(p))
    return packets


class TestDelivery:
    def test_unicast_reaches_only_owner(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        b = lan.attach(Node("b", "02:00:00:00:00:12", "192.168.10.12"))
        c = lan.attach(Node("c", "02:00:00:00:00:13", "192.168.10.13"))
        b_in, c_in = _inbox(b), _inbox(c)
        a.send_udp(b.ip, 1234, b"hi")
        assert len(b_in) == 1 and len(c_in) == 0

    def test_broadcast_reaches_everyone_but_sender(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        b = lan.attach(Node("b", "02:00:00:00:00:12", "192.168.10.12"))
        c = lan.attach(Node("c", "02:00:00:00:00:13", "192.168.10.13"))
        a_in, b_in, c_in = _inbox(a), _inbox(b), _inbox(c)
        a.send_udp("255.255.255.255", 9999, b"bcast")
        assert len(a_in) == 0 and len(b_in) == 1 and len(c_in) == 1

    def test_multicast_reaches_members_only(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        member = lan.attach(Node("m", "02:00:00:00:00:12", "192.168.10.12"))
        outsider = lan.attach(Node("o", "02:00:00:00:00:13", "192.168.10.13"))
        member.join_group("239.255.255.250")
        m_in, o_in = _inbox(member), _inbox(outsider)
        a.send_udp("239.255.255.250", 1900, b"M-SEARCH")
        assert len(m_in) == 1 and len(o_in) == 0

    def test_link_local_multicast_reaches_all(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        b = lan.attach(Node("b", "02:00:00:00:00:12", "192.168.10.12"))
        b_in = _inbox(b)
        a.send_udp("224.0.0.251", 5353, b"mdns")  # 224.0.0.x: all stacks
        assert len(b_in) == 1

    def test_capture_sees_everything(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        b = lan.attach(Node("b", "02:00:00:00:00:12", "192.168.10.12"))
        b.udp_closed_behavior = "drop"
        a.send_udp(b.ip, 1, b"one")
        a.send_udp("255.255.255.255", 2, b"two")
        assert lan.capture.packet_count == 2

    def test_duplicate_mac_rejected(self, lan):
        lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        with pytest.raises(ValueError):
            lan.attach(Node("b", "02:00:00:00:00:11", "192.168.10.12"))

    def test_ip_allocation(self, lan):
        node = lan.attach(Node("auto", "02:00:00:00:00:21", "0.0.0.0"))
        assert node.ip.startswith("192.168.10.")
        assert node.ip != lan.gateway_ip

    def test_detach(self, lan):
        node = lan.attach(Node("x", "02:00:00:00:00:31", "192.168.10.31"))
        lan.detach(node)
        assert lan.node_by_name("x") is None
        assert node.lan is None

    def test_node_lookup(self, lan):
        node = lan.attach(Node("findme", "02:00:00:00:00:41", "192.168.10.41"))
        assert lan.node_by_name("findme") is node
        assert lan.node_by_ip("192.168.10.41") is node
        assert lan.mac_of("192.168.10.41") == node.mac


class TestNodeStack:
    def test_arp_broadcast_answered(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        b = lan.attach(Node("b", "02:00:00:00:00:12", "192.168.10.12"))
        a_in = _inbox(a)
        a.send_arp_request(b.ip)
        replies = [p for p in a_in if p.arp and p.arp.op == 2]
        assert len(replies) == 1
        assert replies[0].arp.sender_mac == b.mac

    def test_arp_broadcast_policy(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        shy = lan.attach(Node("shy", "02:00:00:00:00:12", "192.168.10.12"))
        shy.responds_to_broadcast_arp = False
        a_in = _inbox(a)
        a.send_arp_request(shy.ip)
        assert not any(p.arp and p.arp.op == 2 for p in a_in)
        # ...but unicast ARP is always answered (§5.1).
        a.send_arp_request(shy.ip, unicast_to=shy.mac)
        assert any(p.arp and p.arp.op == 2 for p in a_in)

    def test_tcp_syn_to_open_port(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        server = lan.attach(Node("s", "02:00:00:00:00:12", "192.168.10.12",
                                 services=ServiceTable([ServiceInfo(80, "tcp", "http")])))
        a_in = _inbox(a)
        a.send_tcp_segment(server.ip, TcpSegment(50000, 80, flags=TcpFlags.SYN))
        assert any(p.tcp and p.tcp.is_synack for p in a_in)

    def test_tcp_syn_to_closed_port_rst(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        server = lan.attach(Node("s", "02:00:00:00:00:12", "192.168.10.12"))
        a_in = _inbox(a)
        a.send_tcp_segment(server.ip, TcpSegment(50000, 81, flags=TcpFlags.SYN))
        assert any(p.tcp and p.tcp.is_rst for p in a_in)

    def test_tcp_silent_when_not_responding_to_scans(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        quiet = lan.attach(Node("q", "02:00:00:00:00:12", "192.168.10.12"))
        quiet.responds_to_tcp_scan = False
        a_in = _inbox(a)
        a.send_tcp_segment(quiet.ip, TcpSegment(50000, 81, flags=TcpFlags.SYN))
        assert not any(p.tcp for p in a_in)

    def test_udp_closed_port_unreachable(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        b = lan.attach(Node("b", "02:00:00:00:00:12", "192.168.10.12"))
        a_in = _inbox(a)
        a.send_udp(b.ip, 999, b"probe")
        assert any(p.icmp and p.icmp.icmp_type == IcmpType.DEST_UNREACHABLE for p in a_in)

    def test_udp_closed_port_drop_mode(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        b = lan.attach(Node("b", "02:00:00:00:00:12", "192.168.10.12"))
        b.udp_closed_behavior = "drop"
        a_in = _inbox(a)
        a.send_udp(b.ip, 999, b"probe")
        assert not any(p.icmp for p in a_in)

    def test_udp_ephemeral_port_consumed_silently(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        b = lan.attach(Node("b", "02:00:00:00:00:12", "192.168.10.12"))
        a_in = _inbox(a)
        a.send_udp(b.ip, 50001, b"reply-to-client-socket")
        assert not any(p.icmp for p in a_in)

    def test_ping_reply(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        b = lan.attach(Node("b", "02:00:00:00:00:12", "192.168.10.12"))
        a_in = _inbox(a)
        a.send_icmp_echo(b.ip)
        assert any(p.icmp and p.icmp.icmp_type == IcmpType.ECHO_REPLY for p in a_in)

    def test_ping_ignored_when_disabled(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        b = lan.attach(Node("b", "02:00:00:00:00:12", "192.168.10.12"))
        b.responds_to_ping = False
        a_in = _inbox(a)
        a.send_icmp_echo(b.ip)
        assert not any(p.icmp and p.icmp.icmp_type == IcmpType.ECHO_REPLY for p in a_in)

    def test_neighbor_solicitation_answered(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        b = lan.attach(Node("b", "02:00:00:00:00:12", "192.168.10.12"))
        a_in = _inbox(a)
        a.send_neighbor_solicitation(b.ipv6_link_local)
        advertisements = [p for p in a_in if p.icmpv6 and p.icmpv6.icmp_type == 136]
        assert len(advertisements) == 1
        assert advertisements[0].icmpv6.embedded_mac() == b.mac

    def test_ns_ignored_when_ipv6_disabled(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        b = lan.attach(Node("b", "02:00:00:00:00:12", "192.168.10.12"))
        b.ipv6_enabled = False
        a_in = _inbox(a)
        a.send_neighbor_solicitation(b.ipv6_link_local)
        assert not any(p.icmpv6 and p.icmpv6.icmp_type == 136 for p in a_in)

    def test_igmp_join_emits_report(self, lan):
        a = lan.attach(Node("a", "02:00:00:00:00:11", "192.168.10.11"))
        a.join_group("239.255.255.250")
        igmp = [p for p in lan.capture.decoded() if p.igmp]
        assert len(igmp) == 1
        assert igmp[0].igmp.group == "239.255.255.250"
        # joining twice is idempotent
        a.join_group("239.255.255.250")
        assert sum(1 for p in lan.capture.decoded() if p.igmp) == 1

    def test_unattached_node_raises(self):
        node = Node("lonely", "02:00:00:00:00:99", "192.168.10.99")
        with pytest.raises(RuntimeError):
            node.send_udp("192.168.10.1", 1, b"")

    def test_ephemeral_ports_increment_and_wrap(self, lan):
        node = lan.attach(Node("n", "02:00:00:00:00:51", "192.168.10.51"))
        first = node.ephemeral_port()
        assert node.ephemeral_port() == first + 1
        node._next_ephemeral = 65536
        assert node.ephemeral_port() == 49152


class TestTcpExchange:
    def test_full_conversation_on_wire(self, two_nodes):
        client, server = two_nodes
        lan = client.lan
        port = lan.tcp_exchange(client, server, 80, [b"GET / HTTP/1.1\r\n\r\n"],
                                [b"HTTP/1.1 200 OK\r\n\r\n"])
        lan.simulator.run()
        assert port is not None
        tcp = [p for p in lan.capture.decoded() if p.tcp]
        flags = [p.tcp.flags for p in tcp]
        assert any(p.tcp.is_syn for p in tcp)
        assert any(p.tcp.is_synack for p in tcp)
        assert any(p.tcp.payload == b"GET / HTTP/1.1\r\n\r\n" for p in tcp)
        assert any(p.tcp.payload == b"HTTP/1.1 200 OK\r\n\r\n" for p in tcp)
        assert sum(1 for p in tcp if p.tcp.flags & TcpFlags.FIN) == 2

    def test_closed_port_returns_none(self, two_nodes):
        client, server = two_nodes
        lan = client.lan
        result = lan.tcp_exchange(client, server, 4444, [b"x"], [])
        lan.simulator.run()
        assert result is None
        assert any(p.tcp and p.tcp.is_rst for p in lan.capture.decoded())

    def test_server_handler_sees_payload(self, two_nodes):
        client, server = two_nodes
        lan = client.lan
        seen = []
        server.on_tcp(80, lambda node, packet: seen.append(packet.tcp.payload))
        lan.tcp_exchange(client, server, 80, [b"hello"], [])
        lan.simulator.run()
        assert seen == [b"hello"]


class TestCapture:
    def test_per_mac_split(self, two_nodes):
        client, server = two_nodes
        server.udp_closed_behavior = "drop"
        lan = client.lan
        client.send_udp(server.ip, 1234, b"x")
        split = lan.capture.per_mac()
        # Unicast frame appears under both source and destination MAC.
        assert client.mac in split and server.mac in split

    def test_per_mac_pcap_files(self, two_nodes, tmp_path):
        client, server = two_nodes
        server.udp_closed_behavior = "drop"
        lan = client.lan
        client.send_udp(server.ip, 1234, b"x")
        paths = lan.capture.write_per_mac_pcaps(tmp_path)
        assert str(client.mac) in paths
        from repro.net.pcap import read_pcap

        assert len(read_pcap(paths[str(client.mac)])) == 1

    def test_whole_capture_pcap(self, two_nodes, tmp_path):
        client, server = two_nodes
        server.udp_closed_behavior = "drop"
        client.send_udp(server.ip, 1234, b"x")
        count = client.lan.capture.write_pcap(tmp_path / "all.pcap")
        assert count == 1

    def test_keep_bytes_off(self):
        capture = ApCapture(keep_bytes=False)
        capture.observe(1.0, b"\x00" * 60)
        assert capture.packet_count == 1
        assert capture.records == []

    def test_clear(self):
        capture = ApCapture()
        capture.observe(1.0, b"\x00" * 60)
        capture.clear()
        assert capture.packet_count == 0 and capture.records == []

    def test_packets_of(self, two_nodes):
        client, server = two_nodes
        client.udp_closed_behavior = "drop"
        server.udp_closed_behavior = "drop"
        client.send_udp(server.ip, 1, b"a")
        server.send_udp(client.ip, 2, b"b")
        sent = client.lan.capture.packets_of(client.mac)
        assert len(sent) == 1 and sent[0].app_payload == b"a"
