"""Unit tests for the discrete-event simulator."""

import pytest

from repro.simnet.simulator import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        executed = sim.run(until=5.0)
        assert executed == 1
        assert fired == [1]
        assert sim.now == 5.0  # clock advanced to the horizon
        assert sim.pending == 1

    def test_run_max_events(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending == 6

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event_id = sim.schedule(1.0, lambda: fired.append("cancelled"))
        sim.schedule(2.0, lambda: fired.append("kept"))
        sim.cancel(event_id)
        sim.run()
        assert fired == ["kept"]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "nested"]
        assert sim.now == 2.0


class TestPeriodic:
    def test_fires_at_interval(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(10.0, lambda: times.append(sim.now))
        sim.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_first_delay(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(10.0, lambda: times.append(sim.now), first_delay=3.0)
        sim.run(until=25.0)
        assert times == [3.0, 13.0, 23.0]

    def test_until_bound(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(5.0, lambda: times.append(sim.now), until=12.0)
        sim.run(until=100.0)
        assert times == [5.0, 10.0]

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_periodic(0.0, lambda: None)

    def test_determinism(self):
        def run_once():
            sim = Simulator()
            log = []
            sim.schedule_periodic(7.0, lambda: log.append(("a", sim.now)))
            sim.schedule_periodic(11.0, lambda: log.append(("b", sim.now)))
            sim.run(until=100.0)
            return log

        assert run_once() == run_once()

    def test_returns_cancellable_handle(self):
        sim = Simulator()
        times = []
        handle = sim.schedule_periodic(10.0, lambda: times.append(sim.now))
        assert handle.active
        sim.run(until=25.0)  # fires at 10, 20; loop has rescheduled itself
        handle.cancel()
        assert not handle.active
        sim.run(until=100.0)
        assert times == [10.0, 20.0]

    def test_cancel_mid_run(self):
        sim = Simulator()
        times = []
        handle = sim.schedule_periodic(5.0, lambda: times.append(sim.now))
        sim.schedule(12.0, handle.cancel)
        sim.run(until=50.0)
        assert times == [5.0, 10.0]

    def test_simulator_cancel_accepts_handle(self):
        sim = Simulator()
        times = []
        handle = sim.schedule_periodic(5.0, lambda: times.append(sim.now))
        sim.run(until=7.0)
        sim.cancel(handle)
        sim.run(until=50.0)
        assert times == [5.0]


class TestCancelBookkeeping:
    def test_cancelling_executed_event_does_not_leak(self):
        sim = Simulator()
        event_id = sim.schedule(1.0, lambda: None)
        sim.run()
        sim.cancel(event_id)  # already executed: must be a no-op
        assert sim._cancelled == set()

    def test_cancelling_unknown_id_does_not_leak(self):
        sim = Simulator()
        sim.cancel(123456)
        assert sim._cancelled == set()

    def test_cancelled_pending_event_is_pruned_after_run(self):
        sim = Simulator()
        event_id = sim.schedule(1.0, lambda: None)
        sim.cancel(event_id)
        sim.run()
        assert sim._cancelled == set()
        assert sim._pending_ids == set()


class TestProgressHook:
    def test_on_event_fires_every_n_events(self):
        sim = Simulator()
        for index in range(10):
            sim.schedule(float(index + 1), lambda: None)
        reports = []
        sim.run(on_event=lambda count, now: reports.append((count, now)),
                on_event_every=4)
        # every 4 events, plus the final partial report
        assert reports == [(4, 4.0), (8, 8.0), (10, 10.0)]

    def test_no_trailing_duplicate_when_count_is_exact(self):
        sim = Simulator()
        for index in range(4):
            sim.schedule(float(index + 1), lambda: None)
        reports = []
        sim.run(on_event=lambda count, now: reports.append(count), on_event_every=2)
        assert reports == [2, 4]

    def test_no_report_when_nothing_ran(self):
        sim = Simulator()
        reports = []
        sim.run(on_event=lambda count, now: reports.append(count))
        assert reports == []

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Simulator().run(on_event=lambda c, n: None, on_event_every=0)
