"""Tests for the tshark-like / nDPI-like classifiers and manual rules."""

import pytest

from repro.classify.labels import DISCOVERY_LABELS, Label
from repro.classify.ndpi_like import NdpiLikeClassifier
from repro.classify.rules import CorrectedClassifier, ManualRules, default_rules
from repro.classify.tshark_like import TsharkLikeClassifier
from repro.net.decode import decode_frame
from repro.net.ether import EthernetFrame, EtherType
from repro.net.ipv4 import IpProtocol, Ipv4Packet
from repro.net.mac import BROADCAST_MAC
from repro.net.udp import UdpDatagram
from repro.net.tcp import TcpFlags, TcpSegment
from repro.protocols.mdns import mdns_query
from repro.protocols.rtp import RtpPacket
from repro.protocols.ssdp import SsdpMessage
from repro.protocols.stun import StunMessage
from repro.protocols.tls import TlsRecord, TlsVersion
from repro.protocols.tplink_shp import TplinkShpMessage
from repro.protocols.tuyalp import TuyaLpMessage


def udp_packet(payload, sport, dport, src_mac="02:00:00:00:00:01"):
    datagram = UdpDatagram(sport, dport, payload)
    packet = Ipv4Packet("192.168.10.1", "192.168.10.2", IpProtocol.UDP, datagram.encode())
    frame = EthernetFrame("02:00:00:00:00:02", src_mac, EtherType.IPV4, packet.encode())
    return decode_frame(frame.encode())


def tcp_packet(payload, sport, dport):
    segment = TcpSegment(sport, dport, flags=TcpFlags.ACK | TcpFlags.PSH, payload=payload)
    packet = Ipv4Packet("192.168.10.1", "192.168.10.2", IpProtocol.TCP, segment.encode())
    frame = EthernetFrame("02:00:00:00:00:02", "02:00:00:00:00:01", EtherType.IPV4, packet.encode())
    return decode_frame(frame.encode())


@pytest.fixture
def tshark():
    return TsharkLikeClassifier()


@pytest.fixture
def ndpi():
    return NdpiLikeClassifier()


class TestTsharkLike:
    def test_port_based_labels(self, tshark):
        assert tshark.classify_packet(udp_packet(b"\x00" * 20, 5000, 5353)) is Label.MDNS
        assert tshark.classify_packet(udp_packet(b"x" * 20, 5000, 1900)) is Label.SSDP
        assert tshark.classify_packet(udp_packet(b"x" * 300, 68, 67)) is Label.DHCP
        assert tshark.classify_packet(tcp_packet(b"\x16\x03\x03\x00\x00", 5000, 443)) is Label.HTTPS

    def test_misses_ssdp_response_to_ephemeral(self, tshark):
        # The Appendix C.2 failure mode: the dissector keys on the
        # destination port, so 1900 -> 50000 responses come back generic.
        response = SsdpMessage.response("http://x/", "upnp:rootdevice", "uuid:1::r", "srv").encode()
        assert tshark.classify_packet(udp_packet(response, 1900, 50000)) is Label.UNKNOWN

    def test_tplink_claims_reverse_direction(self, tshark):
        reply = TplinkShpMessage.get_sysinfo_query().encode()
        assert tshark.classify_packet(udp_packet(reply, 9999, 51000)) is Label.TPLINK_SHP

    def test_stun_heuristic_on_10000_range(self, tshark):
        rtp = RtpPacket(97, 1, 1, 1, b"x" * 32).encode()
        assert tshark.classify_packet(udp_packet(rtp, 10002, 10002)) is Label.STUN

    def test_http_heuristic_any_port(self, tshark):
        assert tshark.classify_packet(tcp_packet(b"GET /x HTTP/1.1\r\n\r\n", 5000, 8060)) is Label.HTTP

    def test_non_ip_labels(self, tshark):
        arp_frame = EthernetFrame(BROADCAST_MAC, "02:00:00:00:00:01", EtherType.ARP, b"\x00" * 28)
        assert tshark.classify_packet(decode_frame(arp_frame.encode())) is Label.ARP
        eapol_frame = EthernetFrame("02:00:00:00:00:02", "02:00:00:00:00:01", EtherType.EAPOL, b"\x02\x03\x00\x00")
        assert tshark.classify_packet(decode_frame(eapol_frame.encode())) is Label.EAPOL

    def test_tls_confirmed_by_record_header(self, tshark):
        # Payload on 443 that is not TLS -> generic, not HTTPS.
        assert tshark.classify_packet(tcp_packet(b"garbage-bytes", 5000, 443)) is Label.UNKNOWN


class TestNdpiLike:
    def test_content_based_ssdp_any_port(self, ndpi):
        response = SsdpMessage.response("http://x/", "upnp:rootdevice", "uuid:1::r", "srv").encode()
        assert ndpi.classify_packet(udp_packet(response, 1900, 50000)) is Label.SSDP
        msearch = SsdpMessage.msearch().encode()
        assert ndpi.classify_packet(udp_packet(msearch, 50000, 1900)) is Label.SSDP

    def test_tls_by_record_header(self, ndpi):
        record = TlsRecord.client_hello(TlsVersion.TLS_1_2).encode()
        assert ndpi.classify_packet(tcp_packet(record, 5000, 8009)) is Label.TLS

    def test_tplink_by_decryption(self, ndpi):
        query = TplinkShpMessage.get_sysinfo_query().encode()
        assert ndpi.classify_packet(udp_packet(query, 51000, 9999)) is Label.TPLINK_SHP

    def test_tuyalp_by_magic(self, ndpi):
        frame = TuyaLpMessage.discovery("gw", "pk", "10.0.0.1").encode()
        assert ndpi.classify_packet(udp_packet(frame, 6666, 6666)) is Label.TUYALP

    def test_mdns_vs_dns(self, ndpi):
        query = mdns_query(["_hue._tcp.local"]).encode()
        assert ndpi.classify_packet(udp_packet(query, 5353, 5353)) is Label.MDNS
        assert ndpi.classify_packet(udp_packet(query, 5000, 53)) is Label.DNS

    def test_stun_by_magic_cookie(self, ndpi):
        stun = StunMessage(transaction_id=b"x" * 12).encode()
        assert ndpi.classify_packet(udp_packet(stun, 5000, 3478)) is Label.STUN

    def test_rtp_mislabeled_stun_in_10000_range(self, ndpi):
        # Appendix C.2: Google's RTP on 10000-10010 labeled STUN.
        rtp = RtpPacket(97, 1, 1, 1, b"x" * 32).encode()
        assert ndpi.classify_packet(udp_packet(rtp, 10005, 10005)) is Label.STUN
        # Outside the range it is correctly RTP.
        assert ndpi.classify_packet(udp_packet(rtp, 55444, 55444)) is Label.RTP

    def test_nintendo_eapol_mislabeled_amazonaws(self, ndpi):
        frame = EthernetFrame("02:00:00:00:00:02", "98:b6:e9:01:02:03",
                              EtherType.EAPOL, b"\x02\x03\x00\x00")
        assert ndpi.classify_packet(decode_frame(frame.encode())) is Label.AMAZON_AWS

    def test_ciscovpn_artifact_on_specific_notify_length(self, ndpi):
        base = SsdpMessage.notify("http://x/", "upnp:rootdevice", "uuid:1::r", "srv")
        wire = base.encode()
        padding = (97 - len(wire) % 97) % 97
        padded = wire[:-2] + b" " * padding + b"\r\n"
        assert len(padded) % 97 == 0
        assert ndpi.classify_packet(udp_packet(padded, 50000, 1900)) is Label.CISCOVPN

    def test_unknown_payload_unlabeled(self, ndpi):
        assert ndpi.classify_packet(udp_packet(b"\xa7\x01\x02\x03", 40000, 40001)) is None

    def test_http_by_method(self, ndpi):
        assert ndpi.classify_packet(tcp_packet(b"GET /api HTTP/1.1\r\n\r\n", 5000, 8123)) is Label.HTTP


class TestManualRules:
    def test_stun_in_10000_range_corrected_to_rtp(self):
        classifier = CorrectedClassifier()
        rtp = RtpPacket(97, 1, 1, 1, b"x" * 32).encode()
        assert classifier.classify_packet(udp_packet(rtp, 10005, 10005)) is Label.RTP

    def test_55444_is_rtp(self):
        classifier = CorrectedClassifier()
        rtp = RtpPacket(97, 1, 1, 1, b"x" * 32).encode()
        assert classifier.classify_packet(udp_packet(rtp, 55444, 55444)) is Label.RTP

    def test_ciscovpn_artifact_corrected(self):
        classifier = CorrectedClassifier()
        base = SsdpMessage.notify("http://x/", "upnp:rootdevice", "uuid:1::r", "srv")
        wire = base.encode()
        padding = (97 - len(wire) % 97) % 97
        padded = wire[:-2] + b" " * padding + b"\r\n"
        assert classifier.classify_packet(udp_packet(padded, 50000, 1900)) is Label.SSDP

    def test_amazonaws_artifact_corrected(self):
        classifier = CorrectedClassifier()
        frame = EthernetFrame("02:00:00:00:00:02", "98:b6:e9:01:02:03",
                              EtherType.EAPOL, b"\x02\x03\x00\x00")
        assert classifier.classify_packet(decode_frame(frame.encode())) is Label.EAPOL

    def test_lifx_broadcast_unknown(self):
        classifier = CorrectedClassifier()
        packet = udp_packet(b"\x24\x00" + b"\x00" * 34, 50000, 56700)
        assert classifier.classify_packet(packet) is Label.UNKNOWN

    def test_unlabeled_transport_becomes_unknown(self):
        classifier = CorrectedClassifier()
        assert classifier.classify_packet(udp_packet(b"\xa7\x01", 40000, 40001)) is Label.UNKNOWN

    def test_rules_are_ordered(self):
        rules = default_rules()
        names = [rule.name for rule in rules]
        assert names.index("google-10000-range-is-rtp") < names.index("unlabeled-transport-is-unknown")


class TestCrossValidation:
    def test_crossval_on_capture(self, mini_capture):
        from repro.classify.crossval import cross_validate

        testbed, packets = mini_capture
        result = cross_validate(packets)
        assert result.total_units > 0
        assert 0.5 < result.tshark_coverage <= 1.0
        assert 0.5 < result.ndpi_coverage <= 1.0
        # The documented dominant disagreement mode is present.
        assert result.confusion.get(("UNKNOWN", "SSDP"), 0) > 0

    def test_heatmap_shape(self, mini_capture):
        from repro.classify.crossval import cross_validate

        testbed, packets = mini_capture
        result = cross_validate(packets)
        tshark_axis, ndpi_axis, matrix = result.heatmap()
        assert len(matrix) == len(ndpi_axis)
        assert all(len(row) == len(tshark_axis) for row in matrix)
        assert sum(sum(row) for row in matrix) == result.total_units

    def test_https_tls_alias_agree(self):
        from repro.classify.crossval import cross_validate

        record = TlsRecord.client_hello(TlsVersion.TLS_1_2).encode()
        packets = [tcp_packet(record, 50000, 443)]
        result = cross_validate(packets)
        assert result.agree == 1 and result.disagree == 0
