"""Tests for honeypot-marker propagation tracing (§3.1 capability)."""

import pytest

from repro.apps.appmodel import AppCategory, AppModel, ExfilRule, Identifier, ScanProtocol
from repro.apps.runtime import InstrumentedPhone
from repro.core.propagation import trace_markers
from repro.honeypot.farm import HoneypotFarm


@pytest.fixture
def lab_with_honeypots(mini_testbed):
    farm = HoneypotFarm.deploy(mini_testbed.lan)
    mini_testbed.run(30.0)
    phone = InstrumentedPhone()
    mini_testbed.lan.attach(phone)
    return mini_testbed, farm, phone


BASE = ["android.permission.INTERNET",
        "android.permission.CHANGE_WIFI_MULTICAST_STATE"]


class TestPropagation:
    def test_marker_surfaces_in_cloud_flow(self, lab_with_honeypots):
        testbed, farm, phone = lab_with_honeypots
        app = AppModel(
            "com.test.harvester", "harvester", AppCategory.REGULAR,
            permissions=BASE,
            scan_protocols=[ScanProtocol.SSDP],
            exfil=[ExfilRule("collector.example", [Identifier.DEVICE_UUID])],
        )
        result = phone.run_app(app)
        report = trace_markers(farm.log, [result])
        assert report.markers_planted > 0
        assert report.hits, "the honeypot's marked UUID must surface in the upload"
        hit = report.hits[0]
        assert hit.planted_protocol == "ssdp"
        assert hit.surfaced_in_app == "com.test.harvester"
        assert hit.endpoint == "collector.example"
        assert hit.requested_by_mac == str(phone.mac)

    def test_non_scanning_app_surfaces_nothing(self, lab_with_honeypots):
        testbed, farm, phone = lab_with_honeypots
        app = AppModel("com.test.clean", "clean", AppCategory.REGULAR, permissions=BASE)
        result = phone.run_app(app)
        report = trace_markers(farm.log, [result])
        assert report.hits == []

    def test_surfaced_fraction_bounds(self, lab_with_honeypots):
        testbed, farm, phone = lab_with_honeypots
        app = AppModel(
            "com.test.h2", "h2", AppCategory.REGULAR,
            permissions=BASE,
            scan_protocols=[ScanProtocol.SSDP, ScanProtocol.MDNS],
            exfil=[ExfilRule("collector.example",
                             [Identifier.DEVICE_UUID, Identifier.HOSTNAMES])],
        )
        result = phone.run_app(app)
        report = trace_markers(farm.log, [result])
        assert 0.0 <= report.surfaced_fraction <= 1.0
        assert report.markers_surfaced <= report.markers_planted

    def test_by_protocol_breakdown(self, lab_with_honeypots):
        testbed, farm, phone = lab_with_honeypots
        app = AppModel(
            "com.test.h3", "h3", AppCategory.REGULAR,
            permissions=BASE,
            scan_protocols=[ScanProtocol.SSDP, ScanProtocol.MDNS],
            exfil=[ExfilRule("collector.example",
                             [Identifier.DEVICE_UUID, Identifier.HOSTNAMES,
                              Identifier.DEVICE_MODEL])],
        )
        result = phone.run_app(app)
        report = trace_markers(farm.log, [result])
        assert set(report.by_protocol()) <= {"ssdp", "mdns", "http", "telnet"}
        assert sum(report.by_protocol().values()) == len(report.hits)

    def test_empty_inputs(self):
        from repro.honeypot.base import HoneypotLog

        report = trace_markers(HoneypotLog(), [])
        assert report.markers_planted == 0
        assert report.surfaced_fraction == 0.0
