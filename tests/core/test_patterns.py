"""Tests for the communication-patterns analysis (§4.4 future work)."""

import pytest

from repro.core.patterns import (
    analyze_patterns,
    household_communication,
    median_communicating_devices,
)
from tests.conftest import device_maps


@pytest.fixture(scope="module")
def patterns(full_testbed_run):
    testbed, packets = full_testbed_run
    macs, _, _ = device_maps(testbed)
    return testbed, analyze_patterns(packets, macs)


class TestPatterns:
    def test_pairs_reflect_clusters(self, patterns):
        testbed, result = patterns
        amazon = {node.name for node in testbed.devices_of_vendor("Amazon")}
        intra_amazon = [
            pair for pair in result.pairs if pair[0] in amazon and pair[1] in amazon
        ]
        assert intra_amazon

    def test_top_talkers_are_chatty_vendors(self, patterns):
        testbed, result = patterns
        talkers = dict(result.top_talkers(15))
        vendors = {testbed.device(name).vendor for name in talkers}
        assert {"Amazon", "Google"} & vendors

    def test_dominant_protocol_per_pair(self, patterns):
        testbed, result = patterns
        top = result.top_pairs(5)
        assert top
        assert all(pair.dominant_protocol is not None for pair in top)

    def test_broadcast_share_high_for_tuya(self, patterns):
        testbed, result = patterns
        tuya = [node.name for node in testbed.devices_of_vendor("Tuya")]
        shares = [result.broadcast_share(name) for name in tuya]
        # Tuya devices only broadcast; everything they send is one-to-many.
        assert all(share > 0.9 for share in shares if share > 0)

    def test_activity_profiles_cover_all_devices(self, patterns):
        testbed, result = patterns
        assert set(result.activity) == {node.name for node in testbed.devices}

    def test_burstiness_bounds(self, patterns):
        testbed, result = patterns
        for node in testbed.devices[:20]:
            assert result.burstiness(node.name) >= 0.0

    def test_empty_capture(self):
        result = analyze_patterns([], {"02:00:00:00:00:01": "x"})
        assert result.pairs == {}
        assert result.top_talkers() == []


class TestHouseholdCommunication:
    def test_summaries_cover_households(self, inspector_dataset):
        summaries = household_communication(inspector_dataset)
        assert len(summaries) == inspector_dataset.household_count

    def test_median_communicating_devices(self, inspector_dataset):
        # §6.3: "a regular household has a median of 3 different IoT
        # devices that often communicate with each other".
        median = median_communicating_devices(inspector_dataset)
        assert 2.0 <= median <= 5.0

    def test_flows_counted_by_transport(self, inspector_dataset):
        summaries = household_communication(inspector_dataset)
        assert any(summary.tcp_flows for summary in summaries)
        assert any(summary.udp_flows for summary in summaries)
