"""Tests for the §5.1 ARP scanning/response analysis."""

import pytest

from repro.core.arp_analysis import analyze_arp
from tests.conftest import device_maps


@pytest.fixture(scope="module")
def arp_analysis(full_testbed_run):
    testbed, packets = full_testbed_run
    macs, _, _ = device_maps(testbed)
    ips = {node.name: node.ip for node in testbed.devices}
    return testbed, analyze_arp(packets, macs, ips)


class TestArpAnalysis:
    def test_echo_fleet_detected_as_sweepers(self, arp_analysis):
        testbed, analysis = arp_analysis
        sweepers = analysis.sweepers()
        assert len(sweepers) == 17
        assert all(name.startswith("amazon-echo") for name in sweepers)

    def test_sweepers_cover_ip_space(self, arp_analysis):
        testbed, analysis = arp_analysis
        first = analysis.scanners[analysis.sweepers()[0]]
        assert len(first.broadcast_targets) > 200  # the whole /24

    def test_broadcast_response_rate_near_58(self, arp_analysis):
        testbed, analysis = arp_analysis
        rate = analysis.broadcast_response_rate()
        assert 0.5 <= rate <= 0.72  # paper: 58%

    def test_unicast_always_answered(self, arp_analysis):
        testbed, analysis = arp_analysis
        assert analysis.unicast_response_rate() == pytest.approx(1.0)

    def test_echo_unicast_coverage_near_83(self, arp_analysis):
        testbed, analysis = arp_analysis
        echo = analysis.sweepers()[0]
        coverage = analysis.unicast_probe_coverage(echo, len(testbed.devices))
        assert 0.7 <= coverage <= 0.95  # paper: 83%

    def test_six_public_ip_probers(self, arp_analysis):
        testbed, analysis = arp_analysis
        assert len(analysis.public_ip_probers()) == 6

    def test_non_scanners_not_flagged(self, arp_analysis):
        testbed, analysis = arp_analysis
        # Gratuitous boot ARP alone must not make a device a sweeper.
        hue = analysis.scanners.get("philips-hue-hub-1")
        assert hue is None or not hue.is_sweeper

    def test_inferred_ips_work_without_map(self, full_testbed_run):
        testbed, packets = full_testbed_run
        macs, _, _ = device_maps(testbed)
        analysis = analyze_arp(packets, macs)  # no IP map given
        assert len(analysis.sweepers()) == 17
