"""Unit tests for report renderers and the exfiltration audit."""

import pytest

from repro.apps.appmodel import AppCategory, AppModel, Identifier
from repro.apps.runtime import AppRunResult, CloudFlow
from repro.core.exfiltration import ExfiltrationAudit, audit_app_runs, sdk_case_studies
from repro.report.tables import render_comparison, render_table


def _run(package, category=AppCategory.REGULAR, protocols=(), flows=(), accesses=()):
    app = AppModel(package, package, category, permissions=[])
    result = AppRunResult(app=app)
    result.protocols_used = set(protocols)
    result.cloud_flows = list(flows)
    result.api_accesses = list(accesses)
    return result


def _flow(app, endpoint, payload, party="third", sdk=None, direction="up", b64=False):
    return CloudFlow(timestamp=0.0, app=app, endpoint=endpoint, party=party,
                     sdk=sdk, payload=payload, direction=direction, encoded_base64=b64)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [("x", 1), ("yyyy", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        # all rows same width
        assert len({len(line) for line in lines[2:]}) <= 2

    def test_comparison(self):
        text = render_comparison([("metric", 1, 2)])
        assert "paper" in text and "measured" in text
        assert "metric" in text

    def test_empty_rows(self):
        text = render_table(["h1", "h2"], [])
        assert "h1" in text


class TestExfiltrationAudit:
    def test_scanner_union(self):
        runs = [
            _run("a", protocols={"mdns"}),
            _run("b", protocols={"ssdp"}),
            _run("c", protocols={"mdns", "ssdp"}),
            _run("d", protocols={"arp"}),  # arp alone is not a "scanner"
            _run("e"),
        ]
        audit = audit_app_runs(runs)
        assert audit.any_scanner_count == 3
        assert audit.scanner_fraction("mdns") == pytest.approx(2 / 5)

    def test_upload_accounting(self):
        runs = [
            _run("a", flows=[_flow("a", "x.com", {"router_ssid": "Lab"})]),
            _run("b", flows=[_flow("b", "y.com", {"router_ssid": "Lab", "aaid": "z"})]),
        ]
        audit = audit_app_runs(runs)
        assert audit.apps_uploading(Identifier.ROUTER_SSID) == 2
        assert audit.apps_uploading(Identifier.AAID) == 1
        assert audit.upload_endpoints[Identifier.ROUTER_SSID] == {"x.com", "y.com"}

    def test_downlink_separated_from_uploads(self):
        runs = [_run("a", flows=[
            _flow("a", "aws", {"device_mac": ["m1"]}, direction="down"),
        ])]
        audit = audit_app_runs(runs)
        assert audit.apps_uploading(Identifier.DEVICE_MAC) == 0
        assert audit.downlink_mac_apps == {"a"}

    def test_iot_mac_relaying_counted(self):
        runs = [
            _run("iot", category=AppCategory.IOT,
                 flows=[_flow("iot", "cloud", {"device_mac": "m"}, party="first")]),
            _run("reg", category=AppCategory.REGULAR,
                 flows=[_flow("reg", "cloud", {"device_mac": "m"})]),
        ]
        audit = audit_app_runs(runs)
        assert audit.device_mac_relaying_iot_apps == {"iot"}

    def test_third_party_tracking(self):
        runs = [_run("a", flows=[
            _flow("a", "tracker", {"router_mac": "m"}, party="third"),
            _flow("a", "own", {"router_mac": "m"}, party="first"),
        ])]
        audit = audit_app_runs(runs)
        assert audit.third_party_uploads[Identifier.ROUTER_MAC] == {"a"}

    def test_sdk_case_studies(self):
        runs = [_run("cnn", flows=[
            _flow("cnn", "events.claspws.tv/v1/event",
                  {"router_ssid": "enc"}, sdk="AppDynamics", b64=True),
        ])]
        studies = sdk_case_studies(audit_app_runs(runs))
        assert studies["AppDynamics"]["base64_encoded"]
        assert studies["AppDynamics"]["apps"] == ["cnn"]

    def test_total_apps_override(self):
        runs = [_run("a", protocols={"mdns"})]
        audit = audit_app_runs(runs, total_apps=100)
        assert audit.scanner_fraction("mdns") == pytest.approx(0.01)

    def test_empty(self):
        audit = audit_app_runs([])
        assert audit.summary()["total_apps"] == 0
