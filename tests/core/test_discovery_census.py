"""Tests for the §5.1 DHCP option and mDNS service censuses."""

import pytest

from repro.core.discovery_census import (
    DEPRECATED_OPTIONS,
    classify_service,
    dhcp_census,
    mdns_service_census,
)
from tests.conftest import device_maps


@pytest.fixture(scope="module")
def censuses(full_testbed_run):
    testbed, packets = full_testbed_run
    macs, _, _ = device_maps(testbed)
    return testbed, dhcp_census(packets, macs), mdns_service_census(packets, macs)


class TestDhcpCensus:
    def test_86_requesting_devices(self, censuses):
        testbed, dhcp, _ = censuses
        assert len(dhcp.requesting_devices) == 86  # paper: 86

    def test_30_option_types(self, censuses):
        testbed, dhcp, _ = censuses
        assert 27 <= len(dhcp.requested_options) <= 33  # paper: 30

    def test_deprecated_options_requested(self, censuses):
        testbed, dhcp, _ = censuses
        assert DEPRECATED_OPTIONS & dhcp.requested_options
        assert dhcp.deprecated_requesters

    def test_hostname_fraction_67(self, censuses):
        testbed, dhcp, _ = censuses
        fraction = dhcp.hostname_fraction(len(testbed.devices))
        assert fraction == pytest.approx(0.67, abs=0.03)  # paper: 67%

    def test_16_unique_client_versions(self, censuses):
        testbed, dhcp, _ = censuses
        assert len(dhcp.unique_client_versions) == 16  # paper: 16
        assert dhcp.version_fraction(len(testbed.devices)) == pytest.approx(0.40, abs=0.03)

    def test_37_old_or_custom_clients(self, censuses):
        testbed, dhcp, _ = censuses
        old = dhcp.old_or_custom_clients()
        assert len(old) == 37  # paper: 37
        # "including Amazon Echo and Google ones"
        assert any(name.startswith("amazon-") for name in old)
        assert any(name.startswith("google-") for name in old)

    def test_hostnames_match_schemes(self, censuses):
        testbed, dhcp, _ = censuses
        chime = dhcp.hostnames.get("ring-chime-1")
        assert chime is not None
        mac = testbed.device("ring-chime-1").mac.compact()
        assert mac in chime  # name + MAC scheme (§5.1)


class TestMdnsServiceCensus:
    def test_service_families_revealed(self, censuses):
        testbed, _, mdns = censuses
        families = set(mdns.by_family)
        # §5.1's list: casting, platform services, streaming, IoT
        # standards, networking protocols.
        assert {"casting", "platform", "streaming", "iot-standard"} <= families

    def test_matter_family_from_echo(self, censuses):
        testbed, _, mdns = censuses
        matter_devices = mdns.devices_revealing("iot-standard")
        assert matter_devices
        assert all(name.startswith("amazon-") for name in matter_devices)

    def test_casting_includes_google(self, censuses):
        testbed, _, mdns = censuses
        casters = mdns.devices_revealing("casting")
        assert any(name.startswith("google-") for name in casters)

    def test_families_of_device(self, censuses):
        testbed, _, mdns = censuses
        hub_families = mdns.families_of("google-nest-hub-5")
        assert "casting" in hub_families

    def test_classify_service_unknown(self):
        assert classify_service("_nosuchservice._tcp.local") is None
        assert classify_service("_googlecast._tcp.local") == "casting"
