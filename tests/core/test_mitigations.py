"""Tests for the §7 mitigations evaluator."""

import pytest

from repro.core.mitigations import (
    MITIGATIONS,
    evaluate_mitigations,
    id_rotation,
    mac_randomization,
    name_minimization,
    strip_identifiers,
)
from repro.inspector.entropy import device_identifiers
from repro.inspector.generate import generate_dataset


@pytest.fixture(scope="module")
def corpus():
    return generate_dataset(seed=23, households=300, target_devices=1000)


@pytest.fixture(scope="module")
def outcomes(corpus):
    return {outcome.name: outcome for outcome in evaluate_mitigations(dataset=corpus)}


class TestTransforms:
    def test_mac_randomization_breaks_oui_link(self):
        import random

        from repro.inspector.schema import InspectedDevice

        device = InspectedDevice(device_id="x", oui="d8:31:34")
        payload = b"USN: uuid:a::d8:31:34:01:02:03::rootdevice"
        rewritten = mac_randomization(payload, device, random.Random(1))
        assert b"d8:31:34:01:02:03" not in rewritten
        # OUI validation then rejects the randomized MAC.
        device.ssdp_responses = [rewritten]
        assert device_identifiers(device)["mac"] == set()

    def test_id_rotation_unlinkable_across_epochs(self):
        import random

        from repro.inspector.schema import InspectedDevice

        device = InspectedDevice(device_id="x", oui="d8:31:34")
        payload = b"uuid:12345678-1234-5678-9abc-def012345678"
        first = id_rotation(payload, device, random.Random(1))
        second = id_rotation(payload, device, random.Random(2))
        assert first != second  # different epochs -> different values
        assert b"12345678-1234-5678" not in first

    def test_rotation_stable_within_epoch(self):
        import random

        from repro.inspector.schema import InspectedDevice

        device = InspectedDevice(device_id="x", oui="d8:31:34")
        payload = (b"uuid:12345678-1234-5678-9abc-def012345678 and again "
                   b"uuid:12345678-1234-5678-9abc-def012345678")
        rewritten = id_rotation(payload, device, random.Random(7))
        from repro.inspector.entropy import extract_uuids

        assert len(extract_uuids(rewritten.decode("latin-1"))) == 1

    def test_name_minimization(self):
        import random

        from repro.inspector.schema import InspectedDevice

        device = InspectedDevice(device_id="x", oui="d8:31:34")
        rewritten = name_minimization(b"NAME: Jordan's Roku Express", device, random.Random(1))
        assert b"Jordan" not in rewritten

    def test_strip_composes_all(self):
        import random

        from repro.inspector.schema import InspectedDevice

        device = InspectedDevice(device_id="x", oui="d8:31:34")
        payload = (b"NAME: Jordan's Room | uuid:12345678-1234-5678-9abc-def012345678 "
                   b"| d8:31:34:0a:0b:0c")
        rewritten = strip_identifiers(payload, device, random.Random(1))
        assert b"Jordan" not in rewritten
        assert b"12345678-1234" not in rewritten
        assert b"d8:31:34:0a:0b:0c" not in rewritten


class TestEvaluation:
    def test_all_mitigations_evaluated(self, outcomes):
        assert set(outcomes) == set(MITIGATIONS)

    def test_mac_randomization_removes_mac_rows(self, outcomes):
        baseline = outcomes["baseline"].report
        mitigated = outcomes["mac_randomization"].report
        assert baseline.row_for("mac") is not None
        assert mitigated.row_for("mac") is None
        assert mitigated.row_for("mac, uuid") is None

    def test_name_minimization_removes_name_rows(self, outcomes):
        mitigated = outcomes["name_minimization"].report
        assert mitigated.row_for("name") is None
        assert mitigated.row_for("mac, name, uuid") is None

    def test_entropy_reduction_ordering(self, outcomes):
        baseline = outcomes["baseline"].max_entropy()
        stripped = outcomes["strip_identifiers"].max_entropy()
        assert stripped < baseline

    def test_original_dataset_not_mutated(self, corpus, outcomes):
        # evaluate_mitigations must deep-copy; re-analysis of the
        # original corpus gives baseline numbers again.
        from repro.core.fingerprint import fingerprint_households

        fresh = fingerprint_households(dataset=corpus)
        baseline = outcomes["baseline"].report
        assert [row.households for row in fresh.rows] == [
            row.households for row in baseline.rows
        ]
