"""Tests for the ASCII figure renderers."""

import pytest

from repro.report.figures import (
    render_bars,
    render_figure2_bars,
    render_figure3_heatmap,
    render_heatmap,
)


class TestBars:
    def test_proportional_fill(self):
        text = render_bars([("full", 100.0), ("half", 50.0), ("none", 0.0)],
                           width=10, max_value=100.0)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5
        assert lines[2].count("█") == 0

    def test_labels_aligned(self):
        text = render_bars([("a", 1.0), ("longer", 2.0)])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty(self):
        assert render_bars([], title="T") == "T"

    def test_values_clamped_to_max(self):
        text = render_bars([("over", 200.0)], width=10, max_value=100.0)
        assert text.count("█") == 10


class TestHeatmap:
    def test_shades_scale_with_value(self):
        text = render_heatmap(["x0", "x1"], ["y0"], [[0, 100]])
        row = text.splitlines()[0]
        assert " " in row[3:5]  # zero cell is blank
        assert "@" in row or "%" in row  # peak cell is dark

    def test_legend_lists_columns(self):
        text = render_heatmap(["SSDP", "mDNS"], ["TLS"], [[1, 2]])
        assert "0: SSDP" in text and "1: mDNS" in text

    def test_empty_matrix(self):
        assert render_heatmap([], [], [], title="T").startswith("T")


class TestPaperFigures:
    def test_figure2_bars(self, full_testbed_run):
        from repro.core.protocol_census import census_from_capture
        from tests.conftest import device_maps

        testbed, packets = full_testbed_run
        macs, _, _ = device_maps(testbed)
        census = census_from_capture(packets, macs)
        text = render_figure2_bars(census)
        assert "ARP" in text and "mDNS" in text and "█" in text

    def test_figure3_heatmap(self, full_testbed_run):
        from repro.classify.crossval import cross_validate

        testbed, packets = full_testbed_run
        result = cross_validate(packets)
        text = render_figure3_heatmap(result)
        assert "SSDP" in text
        assert "tshark (x) vs nDPI (y)" in text
