"""Tests for the core analyses against the full simulated testbed."""

import pytest

from repro.core.device_graph import build_device_graph
from repro.core.exposure import analyze_exposure, payload_examples
from repro.core.periodicity import analyze_periodicity, detect_period
from repro.core.protocol_census import add_scan_results, census_from_capture
from repro.core.responses import category_of_profile, correlate_responses
from repro.core.threat_report import build_threat_report
from tests.conftest import device_maps


@pytest.fixture(scope="module")
def analysis_inputs(full_testbed_run):
    testbed, packets = full_testbed_run
    macs, vendors, categories = device_maps(testbed)
    return testbed, packets, macs, vendors, categories


class TestProtocolCensus:
    def test_universal_protocols(self, analysis_inputs):
        testbed, packets, macs, vendors, categories = analysis_inputs
        census = census_from_capture(packets, macs)
        assert census.passive_fraction("ARP") > 0.9
        assert census.passive_fraction("DHCP") > 0.9

    def test_prevalence_order_matches_paper(self, analysis_inputs):
        testbed, packets, macs, *_ = analysis_inputs
        census = census_from_capture(packets, macs)
        # Fig. 2 shape: network-management protocols dominate, then
        # discovery, then application protocols.
        assert census.passive_fraction("ARP") >= census.passive_fraction("mDNS")
        assert census.passive_fraction("mDNS") >= census.passive_fraction("TPLINK_SHP")
        assert census.passive_fraction("mDNS") == pytest.approx(0.44, abs=0.06)
        assert census.passive_fraction("SSDP") == pytest.approx(0.34, abs=0.06)
        assert census.passive_fraction("TuyaLP") == pytest.approx(0.05, abs=0.03)

    def test_average_protocols_per_device(self, analysis_inputs):
        testbed, packets, macs, *_ = analysis_inputs
        census = census_from_capture(packets, macs)
        # §4.1: "an average IoT device supports 8 different protocols".
        assert 5.0 <= census.average_protocols_per_device() <= 11.0

    def test_scan_results_add_orange_bars(self, analysis_inputs, full_testbed_run):
        testbed, packets, macs, *_ = analysis_inputs
        from repro.scan.portscan import PortScanner

        census = census_from_capture(packets, macs)
        scanner = PortScanner()
        testbed.lan.attach(scanner)
        testbed.lan.capture.keep_bytes = False
        targets = [testbed.device(name) for name in
                   ("amazon-echo-spot-1", "google-nest-hub-5",
                    "microseven-camera-1", "apple-homepod-mini-1")]
        try:
            report = scanner.sweep(targets=targets,
                                   tcp_ports=[23, 80, 443, 4070, 8009, 55442],
                                   udp_ports=[53])
        finally:
            testbed.lan.detach(scanner)
        add_scan_results(census, report)
        assert census.scanned  # at least some open services were mapped

    def test_rows_are_sorted_by_prevalence(self, analysis_inputs):
        testbed, packets, macs, *_ = analysis_inputs
        census = census_from_capture(packets, macs)
        rows = census.rows()
        passive = [row["passive_pct"] for row in rows[:5]]
        assert passive == sorted(passive, reverse=True)


class TestDeviceGraph:
    def test_43_devices_communicate(self, analysis_inputs):
        testbed, packets, macs, vendors, _ = analysis_inputs
        graph = build_device_graph(packets, macs, vendors)
        summary = graph.summary()
        assert summary["devices_total"] == 93
        # Fig. 1: "nearly half (43/93)".
        assert 38 <= summary["devices_communicating"] <= 50

    def test_vendor_clusters_exist(self, analysis_inputs):
        testbed, packets, macs, vendors, _ = analysis_inputs
        graph = build_device_graph(packets, macs, vendors)
        for vendor in ("Amazon", "Google", "Apple"):
            cluster = graph.vendor_cluster(vendor)
            assert cluster.number_of_edges() > 0, vendor

    def test_amazon_has_coordinator(self, analysis_inputs):
        testbed, packets, macs, vendors, _ = analysis_inputs
        graph = build_device_graph(packets, macs, vendors)
        coordinator = graph.coordinator_of("Amazon")
        assert coordinator is not None
        cluster = graph.vendor_cluster("Amazon")
        degrees = sorted((cluster.degree(n) for n in cluster.nodes), reverse=True)
        # Star topology: the coordinator's degree dominates (Fig. 4e).
        assert degrees[0] >= 3 * max(degrees[1], 1)

    def test_discovery_excluded(self, analysis_inputs):
        testbed, packets, macs, vendors, _ = analysis_inputs
        graph = build_device_graph(packets, macs, vendors)
        # Tuya devices only broadcast discovery; they must be isolated.
        for node in testbed.devices_of_vendor("Tuya"):
            assert graph.graph.degree(node.name) == 0

    def test_edge_transports(self, analysis_inputs):
        testbed, packets, macs, vendors, _ = analysis_inputs
        graph = build_device_graph(packets, macs, vendors)
        summary = graph.summary()
        assert summary["pairs_tcp_and_udp"] > 0  # thick edges in Fig. 1


class TestExposure:
    @pytest.fixture(scope="class")
    def matrix(self, analysis_inputs):
        testbed, packets, macs, *_ = analysis_inputs
        return analyze_exposure(packets, macs)

    def test_table1_rows(self, matrix):
        assert matrix.exposed_types("ARP") == ["MAC"]
        dhcp = matrix.exposed_types("DHCP")
        assert "MAC" in dhcp and "Device/Model" in dhcp and "OS Version" in dhcp
        mdns = matrix.exposed_types("mDNS")
        assert "UUIDs" in mdns and "Device/Model" in mdns
        ssdp = matrix.exposed_types("SSDP")
        assert "UUIDs" in ssdp and "OS Version" in ssdp and "Outdated OS/SW" in ssdp
        tuya = matrix.exposed_types("TuyaLP")
        assert "GW id" in tuya and "Prod. Key" in tuya
        tplink = matrix.exposed_types("TPLINK")
        assert "Geolocation" in tplink and "OEM id" in tplink and "MAC" in tplink

    def test_display_names_exposed(self, matrix):
        # Google/Apple user-defined display names leak via DHCP (§5.1).
        assert matrix.devices_exposing("DHCP", "Display name")

    def test_boolean_table_shape(self, matrix):
        table = matrix.as_boolean_table()
        assert set(table) == {"ARP", "DHCP", "mDNS", "SSDP", "TuyaLP", "TPLINK"}
        assert table["ARP"]["MAC"] is True
        assert table["ARP"]["Geolocation"] is False

    def test_examples_collected(self, matrix):
        examples = matrix.examples.get(("TPLINK", "Geolocation"))
        assert examples
        assert "," in examples[0]  # "lat,lon"

    def test_payload_examples_table5(self):
        examples = payload_examples()
        assert "9c:8e:cd:0a:33:1b" in examples["SSDP"]  # the Amcrest serial=MAC
        assert "Philips Hue - 685F61" in examples["mDNS"]
        assert "434b4141" in examples["NetBIOS"].replace(" ", "")  # "CKAA"
        assert "42.337681" in examples["TPLINK-SHP"]


class TestResponses:
    def test_table4_shape(self, analysis_inputs):
        testbed, packets, macs, _, categories = analysis_inputs
        correlation = correlate_responses(packets, macs, categories)
        rows = {row[0]: row for row in correlation.by_category()}
        assert "Amazon Echo" in rows
        echo = rows["Amazon Echo"]
        # Table 4: Echo averages 3.65 discovery protocols, 1.82 with
        # responses, 9.47 devices responded to.
        assert 2.0 <= echo[1] <= 4.5
        assert echo[2] >= 1.0
        assert echo[3] >= 5.0
        if "Tuya" in rows:
            assert rows["Tuya"][2] == 0.0  # Tuya gets no responses

    def test_category_mapping(self):
        from repro.devices.catalog import build_catalog

        categories = {category_of_profile(p) for p in build_catalog()}
        assert "Amazon Echo" in categories
        assert "Google&Nest" in categories
        assert "Cameras" in categories
        assert "Hubs" in categories

    def test_window_sensitivity(self, analysis_inputs):
        testbed, packets, macs, _, categories = analysis_inputs
        tight = correlate_responses(packets, macs, categories, window=0.001)
        loose = correlate_responses(packets, macs, categories, window=10.0)
        def responders(correlation):
            return sum(len(stats.responders) for stats in correlation.per_device.values())
        assert responders(loose) >= responders(tight)


class TestPeriodicity:
    def test_pure_periodic_train(self):
        ok, period, dft, autocorr = detect_period([i * 25.0 for i in range(30)])
        assert ok
        assert period == pytest.approx(25.0, rel=0.15)
        assert autocorr > 0.8

    def test_random_train_rejected(self, rng):
        timestamps = sorted(rng.uniform(0, 1000) for _ in range(40))
        ok, *_ = detect_period(timestamps)
        assert not ok

    def test_too_few_events(self):
        ok, *_ = detect_period([1.0, 2.0])
        assert not ok

    def test_zero_span(self):
        ok, *_ = detect_period([5.0, 5.0, 5.0, 5.0])
        assert not ok

    def test_jittered_train_still_detected(self, rng):
        timestamps = [i * 30.0 + rng.uniform(-0.5, 0.5) for i in range(40)]
        ok, period, *_ = detect_period(timestamps)
        assert ok and period == pytest.approx(30.0, rel=0.15)

    def test_discovery_flows_mostly_periodic(self, analysis_inputs):
        testbed, packets, macs, *_ = analysis_inputs
        result = analyze_periodicity(packets, macs)
        # Appendix D.1: 88% of discovery flows are periodic.
        assert result.periodic_fraction > 0.6
        assert result.groups_per_device() > 0.5

    def test_ablation_dft_only_vs_both(self, analysis_inputs):
        testbed, packets, macs, *_ = analysis_inputs
        both = analyze_periodicity(packets, macs, use_dft=True, use_autocorr=True)
        dft_only = analyze_periodicity(packets, macs, use_dft=True, use_autocorr=False)
        assert len(dft_only.periodic_groups) >= len(both.periodic_groups)


class TestThreatReport:
    @pytest.fixture(scope="class")
    def report(self, analysis_inputs):
        from repro.scan.vulnscan import VulnerabilityScanner

        testbed, packets, macs, *_ = analysis_inputs
        findings = VulnerabilityScanner().scan(testbed.devices)
        return build_threat_report(packets, macs, findings)

    def test_plaintext_http_census(self, report):
        assert report.plaintext_http_devices
        assert report.http_clients_only or report.http_servers

    def test_tls_posture_versions(self, report, analysis_inputs):
        testbed, *_ = analysis_inputs
        assert report.tls_device_count >= 20  # §5.2: 32 devices
        versions = set()
        for posture in report.tls_devices.values():
            versions |= posture.versions
        assert "1.2" in versions and "1.3" in versions

    def test_amazon_short_lived_ip_certs(self, report, analysis_inputs):
        testbed, *_ = analysis_inputs
        amazon = {n.name for n in testbed.devices_of_vendor("Amazon")}
        amazon_postures = [p for name, p in report.tls_devices.items() if name in amazon]
        with_certs = [p for p in amazon_postures if p.certificates]
        assert with_certs
        assert any(p.ip_common_names for p in with_certs)
        assert any(p.min_cert_validity_years < 0.5 for p in with_certs)

    def test_google_long_lived_certs(self, report, analysis_inputs):
        testbed, *_ = analysis_inputs
        google = {n.name for n in testbed.devices_of_vendor("Google")}
        postures = [p for name, p in report.tls_devices.items() if name in google and p.certificates]
        assert any(p.max_cert_validity_years > 15 for p in postures)

    def test_user_agents_only_google_and_lg(self, report, analysis_inputs):
        testbed, *_ = analysis_inputs
        vendors = {testbed.device(name).vendor for name in report.user_agents}
        assert vendors <= {"Google", "LG", "SmartThings"}

    def test_findings_rollup(self, report):
        severities = report.findings_by_severity()
        assert severities.get("critical", 0) >= 1
        assert severities.get("high", 0) >= 5
        assert "microseven-camera-1" in report.devices_with_findings()
        assert report.findings_for("apple-homepod-mini-1")


class TestQmMulticastExtension:
    """The Appendix D.2 future work: QM mDNS responses counted."""

    def test_multicast_responses_add_links(self, analysis_inputs):
        testbed, packets, macs, _, categories = analysis_inputs
        base = correlate_responses(packets, macs, categories)
        extended = correlate_responses(
            packets, macs, categories, include_multicast_responses=True
        )

        def links(correlation):
            return sum(len(stats.responders) for stats in correlation.per_device.values())

        assert links(extended) > links(base)

    def test_multicast_extension_is_superset(self, analysis_inputs):
        testbed, packets, macs, _, categories = analysis_inputs
        base = correlate_responses(packets, macs, categories)
        extended = correlate_responses(
            packets, macs, categories, include_multicast_responses=True
        )
        for name, stats in base.per_device.items():
            assert stats.responders <= extended.per_device[name].responders


class TestDiscoveryIntervals:
    """§5.1 "Discovery Intervals": recovered per-group cadences."""

    def test_google_ssdp_20s(self, analysis_inputs):
        from repro.core.periodicity import analyze_periodicity, discovery_intervals

        testbed, packets, macs, _, categories = analysis_inputs
        result = analyze_periodicity(packets, macs)
        intervals = discovery_intervals(result, categories)
        assert intervals.get(("Google&Nest", "SSDP")) == pytest.approx(20.0, rel=0.2)

    def test_tuya_broadcast_5s(self, analysis_inputs):
        from repro.core.periodicity import analyze_periodicity, discovery_intervals

        testbed, packets, macs, _, categories = analysis_inputs
        result = analyze_periodicity(packets, macs)
        intervals = discovery_intervals(result, categories)
        assert intervals.get(("Tuya", "TuyaLP")) == pytest.approx(5.0, rel=0.3)

    def test_mdns_in_20_to_100s_band(self, analysis_inputs):
        from repro.core.periodicity import analyze_periodicity, discovery_intervals

        testbed, packets, macs, _, categories = analysis_inputs
        result = analyze_periodicity(packets, macs)
        intervals = discovery_intervals(result, categories)
        mdns = [value for (group, proto), value in intervals.items() if proto == "mDNS"]
        assert mdns
        # §5.1: "most mDNS queries every 20s-100s".
        assert all(15.0 <= value <= 130.0 for value in mdns)
