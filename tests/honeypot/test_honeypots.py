"""Tests for the honeypot deployment."""

import pytest

from repro.honeypot.base import HoneypotLog
from repro.honeypot.farm import HoneypotFarm
from repro.honeypot.http import HttpHoneypot
from repro.honeypot.mdns import MdnsHoneypot
from repro.honeypot.ssdp import SsdpHoneypot
from repro.honeypot.telnet import TelnetHoneypot
from repro.net.decode import DecodedPacket
from repro.net.tcp import TcpFlags, TcpSegment
from repro.protocols.dns import DnsMessage
from repro.protocols.http import HttpRequest, HttpResponse
from repro.protocols.mdns import mdns_query
from repro.protocols.ssdp import SSDP_GROUP_V4, SsdpMessage, SsdpMethod
from repro.simnet.node import Node


@pytest.fixture
def prober(lan):
    node = lan.attach(Node("prober", "02:00:00:00:00:66", "192.168.10.66"))
    inbox = []
    node.add_raw_hook(lambda _n, p: inbox.append(p))
    return node, inbox


class TestSsdpHoneypot:
    def test_answers_msearch_with_marker(self, lan, prober):
        node, inbox = prober
        honeypot = SsdpHoneypot().attach_to(lan)
        node.join_group(SSDP_GROUP_V4)
        node.send_udp(SSDP_GROUP_V4, 1900, SsdpMessage.msearch().encode(), src_port=50123)
        responses = [p for p in inbox if p.udp and p.udp.src_port == 1900]
        assert len(responses) == 1
        message = SsdpMessage.decode(responses[0].udp.payload)
        assert message.method is SsdpMethod.RESPONSE
        marker = message.uuid()
        assert marker and marker.startswith("hp-honeypot-ssdp-")
        # the contact is logged with the same marker
        assert honeypot.log.events[0].marker == marker
        assert honeypot.log.events[0].src_mac == str(node.mac)

    def test_logs_notify_without_responding(self, lan, prober):
        node, inbox = prober
        honeypot = SsdpHoneypot().attach_to(lan)
        notify = SsdpMessage.notify("http://x/", "upnp:rootdevice", "uuid:dev::r", "srv")
        node.send_udp(SSDP_GROUP_V4, 1900, notify.encode(), src_port=50124)
        assert len(honeypot.log) == 1
        assert not any(p.udp and p.udp.src_port == 1900 for p in inbox)

    def test_description_xml_carries_marker(self, lan):
        honeypot = SsdpHoneypot().attach_to(lan)
        xml = honeypot.description_xml("hp-test-000001")
        assert "hp-test-000001" in xml


class TestMdnsHoneypot:
    def test_answers_served_type(self, lan, prober):
        node, inbox = prober
        honeypot = MdnsHoneypot().attach_to(lan)
        node.join_group("224.0.0.251")
        query = mdns_query(["_googlecast._tcp.local"])
        node.send_udp("224.0.0.251", 5353, query.encode(), src_port=5353)
        responses = []
        for p in inbox:
            if p.udp and p.udp.src_port == 5353:
                message = DnsMessage.decode(p.udp.payload)
                if message.is_response:
                    responses.append(message)
        assert responses
        names = [record.name for record in responses[0].answers]
        assert any("_googlecast._tcp.local" == name for name in names)
        assert honeypot.log.events[-1].marker

    def test_ignores_unserved_type_but_logs(self, lan, prober):
        node, inbox = prober
        honeypot = MdnsHoneypot().attach_to(lan)
        node.join_group("224.0.0.251")
        node.send_udp("224.0.0.251", 5353,
                      mdns_query(["_nosuch._tcp.local"]).encode(), src_port=5353)
        assert len(honeypot.log) == 1
        assert honeypot.log.events[0].marker is None

    def test_unicast_reply_for_qu_questions(self, lan, prober):
        node, inbox = prober
        MdnsHoneypot().attach_to(lan)
        query = mdns_query(["_airplay._tcp.local"], unicast_response=True)
        node.send_udp("224.0.0.251", 5353, query.encode(), src_port=5353)
        unicast = [p for p in inbox if p.udp and p.is_unicast and p.udp.src_port == 5353]
        assert unicast


class TestHttpHoneypot:
    def test_serves_marked_description(self, lan, prober):
        node, inbox = prober
        honeypot = HttpHoneypot().attach_to(lan)
        request = HttpRequest("GET", "/desc.xml", {"User-Agent": "test-agent"})
        segment = TcpSegment(50000, 49152, seq=1, flags=TcpFlags.ACK | TcpFlags.PSH,
                             payload=request.encode())
        node.send_tcp_segment(honeypot.ip, segment)
        replies = [p for p in inbox if p.tcp and p.tcp.payload]
        assert replies
        response = HttpResponse.decode(replies[0].tcp.payload)
        assert response.server_banner == "HoneyHTTPd/1.0"
        assert b"hp-honeypot-http-" in response.body
        assert "test-agent" in honeypot.log.events[0].summary

    def test_non_http_logged(self, lan, prober):
        node, _ = prober
        honeypot = HttpHoneypot().attach_to(lan)
        segment = TcpSegment(50000, 80, seq=1, flags=TcpFlags.ACK | TcpFlags.PSH,
                             payload=b"\x16\x03\x03\x00\x00")
        node.send_tcp_segment(honeypot.ip, segment)
        assert "non-HTTP" in honeypot.log.events[0].summary


class TestTelnetHoneypot:
    def test_banner_and_credential_capture(self, lan, prober):
        node, inbox = prober
        honeypot = TelnetHoneypot().attach_to(lan)
        segment = TcpSegment(50000, 23, seq=1, flags=TcpFlags.ACK | TcpFlags.PSH,
                             payload=b"admin:admin\r\n")
        node.send_tcp_segment(honeypot.ip, segment)
        assert honeypot.credential_attempts == [(node.ip, "admin:admin")]
        banners = [p for p in inbox if p.tcp and b"login:" in p.tcp.payload]
        assert banners

    def test_fragmented_line(self, lan, prober):
        node, _ = prober
        honeypot = TelnetHoneypot().attach_to(lan)
        for chunk in (b"roo", b"t:toor\r\n"):
            segment = TcpSegment(50001, 23, seq=1, flags=TcpFlags.ACK | TcpFlags.PSH,
                                 payload=chunk)
            node.send_tcp_segment(honeypot.ip, segment)
        assert honeypot.credential_attempts == [(node.ip, "root:toor")]


class TestFarm:
    def test_deploys_all_four(self, lan):
        farm = HoneypotFarm.deploy(lan)
        assert len(farm.honeypots) == 4
        protocols = {hp.protocol for hp in farm.honeypots}
        assert protocols == {"ssdp", "mdns", "http", "telnet"}

    def test_shared_log(self, lan, prober):
        node, _ = prober
        farm = HoneypotFarm.deploy(lan)
        node.send_udp(SSDP_GROUP_V4, 1900, SsdpMessage.msearch().encode(), src_port=50125)
        node.send_udp("224.0.0.251", 5353,
                      mdns_query(["_googlecast._tcp.local"]).encode(), src_port=5353)
        observed = farm.scanners_observed()
        assert str(node.mac) in observed
        assert set(observed[str(node.mac)]) == {"ssdp", "mdns"}
        assert farm.contact_count() == 2

    def test_honeypots_observe_device_scans(self, mini_testbed):
        farm = HoneypotFarm.deploy(mini_testbed.lan)
        mini_testbed.run(300.0)
        # Devices doing SSDP/mDNS discovery contact the honeypots.
        assert farm.contact_count() > 0
        protocols = {event.protocol for event in farm.log.events}
        assert "ssdp" in protocols or "mdns" in protocols

    def test_markers_are_unique(self, lan, prober):
        node, _ = prober
        honeypot = SsdpHoneypot().attach_to(lan)
        for index in range(5):
            node.send_udp(SSDP_GROUP_V4, 1900, SsdpMessage.msearch().encode(),
                          src_port=50200 + index)
        markers = honeypot.log.markers()
        assert len(markers) == 5 and len(set(markers)) == 5
