"""Property-based tests (hypothesis) on codecs and core invariants."""

import ipaddress
import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.arp import ArpOp, ArpPacket
from repro.net.decode import decode_frame
from repro.net.ether import EthernetFrame, EtherType
from repro.net.flows import assemble_flows
from repro.net.ipv4 import Ipv4Packet, internet_checksum
from repro.net.ipv6 import Ipv6Packet, link_local_from_mac
from repro.net.mac import MacAddress
from repro.net.tcp import TcpFlags, TcpSegment
from repro.net.udp import UdpDatagram
from repro.protocols.coap import CoapCode, CoapMessage
from repro.protocols.dns import DnsMessage, DnsQuestion, DnsRecord, DnsType, decode_name, encode_name
from repro.protocols.netbios import decode_netbios_name, encode_netbios_name
from repro.protocols.tplink_shp import tplink_decrypt, tplink_encrypt
from repro.protocols.tuyalp import TuyaLpMessage

settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=60
)
settings.load_profile("repro")

macs = st.binary(min_size=6, max_size=6).map(MacAddress)
ports = st.integers(min_value=0, max_value=65535)
ipv4s = st.integers(min_value=0, max_value=2**32 - 1).map(
    lambda value: str(ipaddress.IPv4Address(value))
)
payloads = st.binary(min_size=0, max_size=256)

LABEL_ALPHABET = string.ascii_lowercase + string.digits + "-_"
dns_labels = st.text(alphabet=LABEL_ALPHABET, min_size=1, max_size=20)
dns_names = st.lists(dns_labels, min_size=1, max_size=5).map(".".join)


class TestMacProperties:
    @given(macs)
    def test_string_roundtrip(self, mac):
        assert MacAddress(str(mac)) == mac

    @given(macs)
    def test_compact_roundtrip(self, mac):
        assert MacAddress(mac.compact()) == mac

    @given(macs)
    def test_oui_plus_suffix_is_whole(self, mac):
        rebuilt = MacAddress(mac.oui.replace(":", "") + mac.nic_suffix.replace(":", ""))
        assert rebuilt == mac


class TestChecksumProperties:
    @given(payloads)
    def test_checksum_of_checksummed_ipv4_is_zero(self, payload):
        packet = Ipv4Packet("10.0.0.1", "10.0.0.2", 17, payload)
        assert internet_checksum(packet.encode()[:20]) == 0

    @given(st.binary(min_size=0, max_size=64))
    def test_checksum_bounded(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestFrameProperties:
    @given(macs, macs, payloads)
    def test_ethernet_roundtrip(self, dst, src, payload):
        frame = EthernetFrame(dst, src, EtherType.IPV4, payload)
        decoded = EthernetFrame.decode(frame.encode())
        assert (decoded.dst, decoded.src, decoded.payload) == (dst, src, payload)

    @given(macs, ipv4s, macs, ipv4s, st.sampled_from(list(ArpOp)))
    def test_arp_roundtrip(self, smac, sip, tmac, tip, op):
        packet = ArpPacket(op, smac, sip, tmac, tip)
        decoded = ArpPacket.decode(packet.encode())
        assert decoded == packet

    @given(ipv4s, ipv4s, st.integers(min_value=0, max_value=255), payloads)
    def test_ipv4_roundtrip(self, src, dst, protocol, payload):
        packet = Ipv4Packet(src, dst, protocol, payload)
        decoded = Ipv4Packet.decode(packet.encode(), verify_checksum=True)
        assert (decoded.src, decoded.dst, decoded.protocol, decoded.payload) == (
            src, dst, protocol, payload,
        )

    @given(ports, ports, payloads)
    def test_udp_roundtrip(self, sport, dport, payload):
        datagram = UdpDatagram(sport, dport, payload)
        decoded = UdpDatagram.decode(datagram.encode())
        assert (decoded.src_port, decoded.dst_port, decoded.payload) == (sport, dport, payload)

    @given(ports, ports, st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1), payloads)
    def test_tcp_roundtrip(self, sport, dport, seq, ack, payload):
        segment = TcpSegment(sport, dport, seq=seq, ack=ack,
                             flags=TcpFlags.ACK | TcpFlags.PSH, payload=payload)
        decoded = TcpSegment.decode(segment.encode())
        assert decoded.seq == seq and decoded.ack == ack and decoded.payload == payload

    @given(macs)
    def test_link_local_embeds_recoverable_mac(self, mac):
        address = ipaddress.IPv6Address(link_local_from_mac(mac))
        eui = address.packed[8:]
        assert eui[3:5] == b"\xff\xfe"
        recovered = bytes([eui[0] ^ 0x02]) + eui[1:3] + eui[5:]
        assert MacAddress(recovered) == mac


class TestDnsProperties:
    @given(dns_names)
    def test_name_roundtrip(self, name):
        wire = encode_name(name)
        decoded, offset = decode_name(wire, 0)
        assert decoded == name
        assert offset == len(wire)

    @given(st.lists(dns_names, min_size=1, max_size=4))
    def test_question_roundtrip(self, names):
        message = DnsMessage()
        for name in names:
            message.questions.append(DnsQuestion(name, DnsType.PTR))
        decoded = DnsMessage.decode(message.encode())
        assert [question.name for question in decoded.questions] == names

    @given(dns_names, dns_names)
    def test_compression_never_changes_meaning(self, first, second):
        message = DnsMessage(is_response=True)
        message.answers.append(DnsRecord.ptr(first, f"{second}.{first}"))
        message.answers.append(DnsRecord.ptr(first, f"x.{first}"))
        compressed = DnsMessage.decode(message.encode(compress=True))
        uncompressed = DnsMessage.decode(message.encode(compress=False))
        assert [record.ptr_target() for record in compressed.answers] == [
            record.ptr_target() for record in uncompressed.answers
        ]

    @given(st.dictionaries(
        st.text(alphabet=LABEL_ALPHABET, min_size=1, max_size=10),
        st.text(alphabet=LABEL_ALPHABET, min_size=0, max_size=20),
        max_size=6,
    ))
    def test_txt_roundtrip(self, entries):
        record = DnsRecord.txt("x.local", entries)
        assert record.txt_entries() == entries


class TestProprietaryProperties:
    @given(st.binary(min_size=0, max_size=512))
    def test_tplink_xor_involution(self, data):
        assert tplink_decrypt(tplink_encrypt(data)) == data

    @given(st.text(alphabet=LABEL_ALPHABET, min_size=1, max_size=24),
           st.text(alphabet=LABEL_ALPHABET, min_size=1, max_size=24),
           st.booleans())
    def test_tuyalp_roundtrip(self, gw_id, product_key, encrypted):
        message = TuyaLpMessage.discovery(gw_id, product_key, "192.168.1.2",
                                          encrypted=encrypted)
        decoded = TuyaLpMessage.decode(message.encode())
        assert decoded.gw_id == gw_id
        assert decoded.product_key == product_key
        assert decoded.encrypted == encrypted

    @given(st.text(alphabet=string.ascii_uppercase + string.digits, min_size=1, max_size=15))
    def test_netbios_name_roundtrip(self, name):
        assert decode_netbios_name(encode_netbios_name(name)) == name

    @given(st.lists(st.text(alphabet=LABEL_ALPHABET, min_size=1, max_size=30),
                    min_size=0, max_size=4),
           st.binary(max_size=64))
    def test_coap_roundtrip(self, segments, payload):
        message = CoapMessage(CoapCode.GET, 1, uri_path=segments, payload=payload)
        decoded = CoapMessage.decode(message.encode())
        assert decoded.uri_path == segments
        assert decoded.payload == payload


class TestDecodeTotality:
    @given(macs, macs, st.sampled_from([0x0800, 0x0806, 0x86DD, 0x888E, 0x0101]), payloads)
    def test_decode_never_raises(self, dst, src, ethertype, payload):
        """decode_frame is total over syntactically valid Ethernet."""
        frame = EthernetFrame(dst, src, ethertype, payload)
        packet = decode_frame(frame.encode())
        assert packet.frame.src == src

    @given(st.lists(
        st.tuples(ipv4s, ports, ipv4s, ports, payloads), min_size=0, max_size=20,
    ))
    def test_flow_assembly_conserves_packets(self, descriptions):
        packets = []
        for index, (sip, sport, dip, dport, payload) in enumerate(descriptions):
            datagram = UdpDatagram(sport, dport, payload)
            ip_packet = Ipv4Packet(sip, dip, 17, datagram.encode())
            frame = EthernetFrame("02:00:00:00:00:02", "02:00:00:00:00:01",
                                  EtherType.IPV4, ip_packet.encode())
            packets.append(decode_frame(frame.encode(), float(index)))
        table = assemble_flows(packets)
        total_in_flows = sum(flow.packet_count for flow in table)
        assert total_in_flows + len(table.non_flow_packets) == len(packets)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=0, max_size=50))
    def test_detect_period_total(self, timestamps):
        from repro.core.periodicity import detect_period

        ok, period, dft, autocorr = detect_period(timestamps)
        assert isinstance(ok, bool)
        assert 0.0 <= dft <= 1.0 + 1e-9
        assert -1.0 - 1e-9 <= autocorr <= 1.0 + 1e-9


class TestEntropyProperties:
    @given(st.sets(st.uuids().map(str), min_size=0, max_size=30))
    def test_uuid_extraction_complete(self, uuids):
        from repro.inspector.entropy import extract_uuids

        text = " | ".join(f"USN: uuid:{value}::rootdevice" for value in uuids)
        assert extract_uuids(text) == {value.lower() for value in uuids}

    @given(macs)
    def test_mac_extraction_finds_planted(self, mac):
        from repro.inspector.entropy import extract_macs

        text = f"serialNumber: {mac}"
        assert str(mac) in extract_macs(text, mac.oui)


class TestNewCodecProperties:
    @given(st.text(alphabet=LABEL_ALPHABET + "/:.", min_size=1, max_size=40),
           st.integers(1, 9999))
    def test_rtsp_request_roundtrip(self, path, cseq):
        from repro.protocols.rtsp import RtspRequest

        request = RtspRequest("DESCRIBE", f"rtsp://host/{path}", cseq=cseq)
        decoded = RtspRequest.decode(request.encode())
        assert decoded.url == f"rtsp://host/{path}"
        assert decoded.cseq == cseq

    @given(macs, st.integers(0, 0xFFFFFF))
    def test_dhcpv6_solicit_roundtrip(self, mac, txid):
        from repro.protocols.dhcpv6 import Dhcpv6Message

        message = Dhcpv6Message.solicit(mac, txid)
        decoded = Dhcpv6Message.decode(message.encode())
        assert decoded.transaction_id == txid
        assert decoded.client_mac == mac

    @given(st.text(alphabet=LABEL_ALPHABET + "/:.", min_size=1, max_size=60))
    def test_soap_media_url_roundtrip(self, path):
        from repro.protocols.upnp_soap import extract_media_url, set_av_transport_uri

        url = f"http://cdn/{path}"
        request = set_av_transport_uri(url).to_http_request()
        assert extract_media_url(request) == url

    @given(st.binary(min_size=0, max_size=40))
    def test_llc_roundtrip(self, information):
        from repro.net.llc import LlcFrame

        frame = LlcFrame(0xAA, 0xAA, 0x03, information)
        decoded = LlcFrame.decode(frame.encode())
        assert decoded.information == information
