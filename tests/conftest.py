"""Shared fixtures: small/full testbeds, captures, datasets.

Heavy artifacts (full 93-device testbed run, app dataset, crowdsourced
dataset) are session-scoped so the suite builds them once.
"""

from __future__ import annotations

import random

import pytest

from repro.devices.behaviors import DeviceNode, build_testbed
from repro.devices.catalog import build_catalog
from repro.simnet.lan import Lan
from repro.simnet.node import Node
from repro.simnet.services import ServiceInfo, ServiceTable
from repro.simnet.simulator import Simulator


@pytest.fixture
def simulator():
    return Simulator()


@pytest.fixture
def lan(simulator):
    return Lan(simulator)


@pytest.fixture
def two_nodes(lan):
    """A plain client/server pair on a fresh LAN."""
    client = lan.attach(Node("client", "02:aa:00:00:00:01", "192.168.10.21"))
    server = lan.attach(
        Node(
            "server",
            "02:aa:00:00:00:02",
            "192.168.10.22",
            services=ServiceTable([ServiceInfo(80, "tcp", "http", "HTTP/1.1 200 OK", "httpd", "1.0")]),
        )
    )
    return client, server


def _mini_profiles():
    wanted = {
        "amazon-echo-spot-1",
        "google-nest-hub-5",
        "apple-homepod-mini-1",
        "tplink-1",
        "tplink-2",
        "tuya-automation-3",  # the Jinvoo bulb (plaintext TuyaLP)
        "philips-hue-hub-1",
        "roku-tv-1",
        "lg-tv-1",
        "microseven-camera-1",
        "wemo-plug-1",
        "ring-chime-1",
    }
    return [profile for profile in build_catalog() if profile.name in wanted]


@pytest.fixture
def mini_testbed():
    """A 12-device slice of the catalog, booted but not yet run."""
    return build_testbed(seed=42, profiles=_mini_profiles())


@pytest.fixture
def mini_capture(mini_testbed):
    """The mini testbed after 10 simulated minutes, with decoded capture."""
    mini_testbed.run(600.0)
    return mini_testbed, mini_testbed.lan.capture.decoded()


@pytest.fixture(scope="session")
def full_testbed_run():
    """The full 93-device lab run for 20 simulated minutes (built once)."""
    testbed = build_testbed(seed=7)
    testbed.run(1200.0)
    return testbed, testbed.lan.capture.decoded()


@pytest.fixture(scope="session")
def app_dataset():
    from repro.apps.dataset import generate_app_dataset

    return generate_app_dataset(seed=11)


@pytest.fixture(scope="session")
def inspector_dataset():
    from repro.inspector.generate import generate_dataset

    return generate_dataset(seed=23, households=400, target_devices=1300)


@pytest.fixture
def rng():
    return random.Random(1234)


def device_maps(testbed):
    """Helper: the standard MAC/vendor/category maps for analyses."""
    from repro.core.responses import category_of_profile

    return (
        {str(node.mac): node.name for node in testbed.devices},
        {node.name: node.vendor for node in testbed.devices},
        {node.name: category_of_profile(node.profile) for node in testbed.devices},
    )
