"""Docs-consistency gate: CLI coverage + markdown link integrity.

Thin wrapper over ``tools/check_docs.py`` so the gate runs inside the
normal test suite as well as standalone in CI.
"""

import importlib.util
import sys
from pathlib import Path

CHECKER = Path(__file__).resolve().parent.parent / "tools" / "check_docs.py"

spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
check_docs = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_docs", check_docs)
spec.loader.exec_module(check_docs)


def test_every_cli_flag_is_documented():
    assert check_docs.check_cli_docs() == []


def test_every_markdown_link_resolves():
    assert check_docs.check_links() == []


def test_every_docs_page_is_linked_from_readme():
    assert check_docs.check_readme_doc_index() == []


def test_checker_reports_undocumented_flags(monkeypatch):
    """The gate must actually bite: strip a flag from the doc text and
    the checker has to flag it."""
    text = check_docs.CLI_DOC.read_text(encoding="utf-8")

    class FakeDoc:
        def exists(self):
            return True

        def read_text(self, encoding=None):
            return text.replace("--cache-dir", "")

        def relative_to(self, root):
            return Path("docs/cli.md")

    monkeypatch.setattr(check_docs, "CLI_DOC", FakeDoc())
    issues = check_docs.check_cli_docs()
    assert any("--cache-dir" in issue for issue in issues)


def test_readme_index_check_reports_unlinked_pages(monkeypatch):
    """Strip every docs/ link from the README text and the index check
    has to flag each page."""
    text = check_docs.README.read_text(encoding="utf-8")

    class FakeReadme:
        parent = check_docs.README.parent

        def exists(self):
            return True

        def read_text(self, encoding=None):
            return text.replace("docs/", "dropped/")

    monkeypatch.setattr(check_docs, "README", FakeReadme())
    issues = check_docs.check_readme_doc_index()
    pages = sorted(check_docs.DOCS_DIR.glob("*.md"))
    assert len(issues) == len(pages)
    assert any("monitor.md" in issue for issue in issues)
