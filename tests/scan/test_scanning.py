"""Tests for the port scanner, nmap service labels, and Nessus analogue."""

import pytest

from repro.scan.cve_db import CVE_DATABASE, entries_for_software, lookup
from repro.scan.nmap_services import (
    MANUAL_CORRECTIONS,
    correct_service_label,
    nmap_service_name,
)
from repro.scan.portscan import PortScanner, default_tcp_ports
from repro.scan.vulnscan import VulnerabilityScanner
from repro.simnet.node import Node
from repro.simnet.services import ServiceInfo, ServiceTable


@pytest.fixture
def scanned_lan(lan):
    target = lan.attach(
        Node(
            "victim",
            "02:00:00:00:00:77",
            "192.168.10.77",
            services=ServiceTable(
                [
                    ServiceInfo(80, "tcp", "http", "HTTP/1.1 200 OK", "GoAhead-Webs", "2.5"),
                    ServiceInfo(9999, "tcp", "tplink-shp"),
                    ServiceInfo(53, "udp", "dns", "", "SheerDNS", "1.0.0"),
                ]
            ),
        )
    )
    scanner = PortScanner()
    lan.attach(scanner)
    return lan, scanner, target


class TestTcpSynScan:
    def test_finds_open_ports(self, scanned_lan):
        lan, scanner, target = scanned_lan
        opens, responded = scanner.tcp_syn_scan(target, range(1, 1025))
        assert opens == [80]
        assert responded

    def test_includes_high_ports_from_universe(self, scanned_lan):
        lan, scanner, target = scanned_lan
        universe = default_tcp_ports(lan)
        assert 9999 in universe
        opens, _ = scanner.tcp_syn_scan(target, universe)
        assert set(opens) == {80, 9999}

    def test_silent_host_not_responded(self, scanned_lan):
        lan, scanner, _ = scanned_lan
        ghost = lan.attach(Node("ghost", "02:00:00:00:00:78", "192.168.10.78"))
        ghost.responds_to_tcp_scan = False
        opens, responded = scanner.tcp_syn_scan(ghost, range(1, 50))
        assert opens == [] and not responded

    def test_rst_counts_as_response(self, scanned_lan):
        lan, scanner, target = scanned_lan
        opens, responded = scanner.tcp_syn_scan(target, [4321])
        assert opens == [] and responded


class TestUdpScan:
    def test_icmp_unreachable_is_response(self, scanned_lan):
        lan, scanner, target = scanned_lan
        opens, responded = scanner.udp_scan(target, [999])
        assert responded and opens == []

    def test_documented_open_udp_detected(self, scanned_lan):
        lan, scanner, target = scanned_lan
        opens, _ = scanner.udp_scan(target, [53])
        assert 53 in opens

    def test_drop_mode_host_silent(self, scanned_lan):
        lan, scanner, _ = scanned_lan
        quiet = lan.attach(Node("quiet", "02:00:00:00:00:79", "192.168.10.79"))
        quiet.udp_closed_behavior = "drop"
        opens, responded = scanner.udp_scan(quiet, [100, 200])
        assert not responded and opens == []


class TestIpProtocolScan:
    def test_ping_support_detected(self, scanned_lan):
        lan, scanner, target = scanned_lan
        protocols, responded = scanner.ip_protocol_scan(target)
        assert 1 in protocols and responded

    def test_igmp_detected_from_membership(self, scanned_lan):
        lan, scanner, target = scanned_lan
        target.join_group("224.0.0.251")
        protocols, _ = scanner.ip_protocol_scan(target)
        assert 2 in protocols


class TestSweep:
    def test_report_aggregates(self, scanned_lan):
        lan, scanner, target = scanned_lan
        report = scanner.sweep(targets=[target], tcp_ports=list(range(1, 100)) + [9999],
                               udp_ports=[53, 999])
        assert report.devices_with_open_ports == 1
        assert report.tcp_responders == 1
        assert report.udp_responders == 1
        host = report.hosts[0]
        assert {entry.port for entry in host.open_tcp} == {80, 9999}
        assert {entry.port for entry in host.open_udp} == {53}

    def test_labels_applied(self, scanned_lan):
        lan, scanner, target = scanned_lan
        report = scanner.sweep(targets=[target], tcp_ports=[80, 9999], udp_ports=[53])
        by_port = {entry.port: entry for host in report.hosts for entry in host.open_ports}
        assert by_port[9999].nmap_label == "abyss"  # the nmap mistake
        assert by_port[9999].corrected_label == "tplink-shp"
        assert by_port[9999].was_corrected
        assert by_port[80].nmap_label == "http"
        assert not by_port[80].was_corrected


class TestNmapServices:
    def test_tuya_ports_guessed_as_irc(self):
        assert nmap_service_name("udp", 6666) == "irc"
        assert nmap_service_name("udp", 6667) == "irc"

    def test_chromecast_8009_guessed_as_ajp(self):
        assert nmap_service_name("tcp", 8009) == "ajp13"

    def test_echo_4070_guessed_as_ezmeeting(self):
        assert nmap_service_name("tcp", 4070) == "ezmeeting-2"

    def test_unknown_port(self):
        assert nmap_service_name("tcp", 61234) == "unknown"

    def test_corrections_give_reason(self):
        label, reason = correct_service_label("udp", 6666, "irc")
        assert label == "tuyalp" and reason

    def test_uncorrected_passthrough(self):
        label, reason = correct_service_label("tcp", 80, "http")
        assert label == "http" and reason is None

    def test_every_correction_targets_a_known_guess(self):
        for (transport, port) in MANUAL_CORRECTIONS:
            assert nmap_service_name(transport, port) != MANUAL_CORRECTIONS[(transport, port)][0]


class TestCveDatabase:
    def test_paper_findings_present(self):
        for identifier in ("CVE-2016-2183", "CVE-2020-11022", "NESSUS-11535",
                           "NESSUS-12217", "ONVIF-UNAUTH-SNAPSHOT", "UPNP-1.0-DEPRECATED"):
            assert lookup(identifier) is not None

    def test_version_matching(self):
        assert entries_for_software("jQuery", "1.2")
        assert not entries_for_software("jQuery", "3.5.0")
        assert entries_for_software("SheerDNS", "1.0.0")

    def test_unknown_software(self):
        assert entries_for_software("nginx", "1.25") == []

    def test_severities_valid(self):
        for entry in CVE_DATABASE.values():
            assert entry.severity in ("low", "medium", "high", "critical")
            assert 0.0 <= entry.cvss <= 10.0


class TestVulnScanner:
    def test_full_testbed_findings(self, full_testbed_run):
        testbed, _ = full_testbed_run
        scanner = VulnerabilityScanner()
        findings = scanner.scan(testbed.devices)
        by_device = {}
        for finding in findings:
            by_device.setdefault(finding.device, set()).add(finding.identifier)
        # The named §5.2 findings are all discovered.
        assert "NESSUS-11535" in by_device["apple-homepod-mini-1"]
        assert "NESSUS-12217" in by_device["wemo-plug-1"]
        assert "ONVIF-UNAUTH-SNAPSHOT" in by_device["microseven-camera-1"]
        assert "HTTP-BACKUP-EXPOSURE" in by_device["lefun-camera-1"]
        assert "CVE-2016-2183" in by_device["google-nest-hub-5"]
        assert "UPNP-1.0-DEPRECATED" in by_device["roku-tv-1"]
        assert "TPLINK-SHP-NOAUTH" in by_device["tplink-1"]

    def test_banner_matching(self, full_testbed_run):
        testbed, _ = full_testbed_run
        scanner = VulnerabilityScanner()
        findings = scanner.scan_device(testbed.device("microseven-camera-1"))
        jquery = [f for f in findings if f.identifier == "CVE-2020-11022"]
        assert jquery
        assert any("banner" in f.evidence or "jQuery" in f.evidence for f in jquery)

    def test_deduplication(self, full_testbed_run):
        testbed, _ = full_testbed_run
        scanner = VulnerabilityScanner()
        findings = scanner.scan_device(testbed.device("apple-homepod-mini-1"))
        keys = [(f.identifier, f.port, f.transport) for f in findings]
        assert len(keys) == len(set(keys))

    def test_severity_ordering(self, full_testbed_run):
        testbed, _ = full_testbed_run
        findings = VulnerabilityScanner().scan_device(testbed.device("microseven-camera-1"))
        order = {"critical": 0, "high": 1, "medium": 2, "low": 3}
        ranks = [order[f.severity] for f in findings]
        assert ranks == sorted(ranks)

    def test_include_low_filter(self, full_testbed_run):
        testbed, _ = full_testbed_run
        device = testbed.device("philips-hue-hub-1")
        with_low = VulnerabilityScanner(include_low=True).scan_device(device)
        without_low = VulnerabilityScanner(include_low=False).scan_device(device)
        assert len(without_low) <= len(with_low)
        assert not any(f.severity == "low" for f in without_low)

    def test_finding_links_to_cve_entry(self, full_testbed_run):
        testbed, _ = full_testbed_run
        findings = VulnerabilityScanner().scan_device(testbed.device("wemo-plug-1"))
        snooping = next(f for f in findings if f.identifier == "NESSUS-12217")
        assert snooping.cve_entry is not None
        assert "Cache Snooping" in snooping.cve_entry.title
