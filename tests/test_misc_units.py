"""Unit tests for small supporting modules (services, profiles, labels)."""

import pytest

from repro.classify.labels import DISCOVERY_LABELS, Label, MANAGEMENT_LABELS
from repro.devices.profiles import (
    DeviceProfile,
    DhcpConfig,
    HostnameScheme,
    MdnsConfig,
    SsdpConfig,
)
from repro.simnet.services import ServiceInfo, ServiceTable


class TestServiceTable:
    def test_add_and_lookup(self):
        table = ServiceTable([ServiceInfo(80, "tcp", "http")])
        assert table.is_open("tcp", 80)
        assert not table.is_open("udp", 80)
        assert table.get("tcp", 80).protocol == "http"
        assert table.get("tcp", 81) is None

    def test_open_ports_sorted(self):
        table = ServiceTable([
            ServiceInfo(443, "tcp", "https"),
            ServiceInfo(80, "tcp", "http"),
            ServiceInfo(53, "udp", "dns"),
        ])
        assert table.open_ports("tcp") == [80, 443]
        assert table.open_ports("udp") == [53]

    def test_replacement_on_same_key(self):
        table = ServiceTable()
        table.add(ServiceInfo(80, "tcp", "http", software="old"))
        table.add(ServiceInfo(80, "tcp", "http", software="new"))
        assert len(table) == 1
        assert table.get("tcp", 80).software == "new"

    def test_services_property_ordering(self):
        table = ServiceTable([
            ServiceInfo(9999, "udp", "x"),
            ServiceInfo(80, "tcp", "http"),
        ])
        kinds = [(service.transport, service.port) for service in table.services]
        assert kinds == [("tcp", 80), ("udp", 9999)]


class TestDeviceProfile:
    def _profile(self, **kwargs):
        defaults = dict(name="x", vendor="V", model="M", category="Home Automation")
        defaults.update(kwargs)
        return DeviceProfile(**defaults)

    def test_display_name_defaults_to_model(self):
        assert self._profile().display_name == "M"

    def test_uses_mdns_ssdp_flags(self):
        profile = self._profile(mdns=MdnsConfig(), ssdp=SsdpConfig())
        assert profile.uses_mdns and profile.uses_ssdp
        assert not self._profile().uses_mdns

    def test_exposure_always_includes_mac(self):
        assert "MAC" in self._profile().exposed_identifier_types()

    def test_display_name_scheme_exposure(self):
        profile = self._profile(
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.USER_DISPLAY_NAME)
        )
        exposed = profile.exposed_identifier_types()
        assert "Display name" in exposed
        assert "Device/Model" not in exposed

    def test_randomized_scheme_minimizes_exposure(self):
        profile = self._profile(dhcp=DhcpConfig(hostname_scheme=HostnameScheme.RANDOMIZED))
        assert "Device/Model" not in profile.exposed_identifier_types()

    def test_ssdp_responder_exposes_uuid_and_os(self):
        profile = self._profile(ssdp=SsdpConfig(respond=True, server_header="Linux UPnP/1.0"))
        exposed = profile.exposed_identifier_types()
        assert "UUIDs" in exposed and "OS Version" in exposed


class TestLabels:
    def test_discovery_and_management_overlap(self):
        # ARP and DHCP are both discovery-relevant and management.
        assert Label.ARP in DISCOVERY_LABELS and Label.ARP in MANAGEMENT_LABELS

    def test_string_rendering(self):
        assert f"{Label.TPLINK_SHP}" == "TPLINK_SHP"
        assert str(Label.MDNS) == "mDNS"

    def test_artifact_labels_not_discovery(self):
        assert Label.CISCOVPN not in DISCOVERY_LABELS
        assert Label.AMAZON_AWS not in DISCOVERY_LABELS

    def test_all_values_unique(self):
        values = [label.value for label in Label]
        assert len(values) == len(set(values))
