"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("study", "classify", "scan", "fingerprint", "catalog",
                        "capture", "fleet"):
            args = parser.parse_args(
                [command] + (["x.pcap"] if command == "classify" else [])
                + (["/tmp/x"] if command == "capture" else [])
            )
            assert args.command == command

    def test_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.seed == 7 and args.duration == 900.0
        assert args.metrics_out is None
        assert args.trace_out is None
        assert args.log_level is None

    def test_observability_flags_parse(self):
        args = build_parser().parse_args([
            "study", "--metrics-out", "m.json", "--trace-out", "t.json",
            "--log-level", "debug",
        ])
        assert args.metrics_out == "m.json"
        assert args.trace_out == "t.json"
        assert args.log_level == "debug"

    def test_invalid_log_level_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--log-level", "chatty"])

    def test_bad_output_dir_fails_before_run(self, tmp_path, capsys):
        """An unwritable --metrics-out must fail fast, not after the run."""
        missing = tmp_path / "no-such-dir" / "m.json"
        assert main(["study", "--metrics-out", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "--metrics-out" in err and "does not exist" in err


class TestCatalog:
    def test_prints_table3(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "Voice Assistant" in out
        assert "Amazon (17)" in out

    def test_verbose_lists_devices(self, capsys):
        assert main(["catalog", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "philips-hue-hub-1" in out
        assert "Geolocation" in out  # TP-Link exposure column


class TestClassify:
    def test_classifies_pcap(self, tmp_path, capsys, mini_testbed):
        mini_testbed.run(120.0)
        path = tmp_path / "lab.pcap"
        mini_testbed.lan.capture.write_pcap(path)
        assert main(["classify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mDNS" in out and "packets" in out

    def test_crossval_flag(self, tmp_path, capsys, mini_testbed):
        mini_testbed.run(60.0)
        path = tmp_path / "lab.pcap"
        mini_testbed.lan.capture.write_pcap(path)
        assert main(["classify", str(path), "--crossval"]) == 0
        assert "cross-validation" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["classify", str(tmp_path / "nope.pcap")]) == 1
        assert "error" in capsys.readouterr().err

    def test_non_pcap_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "garbage.pcap"
        path.write_bytes(b"this is not a capture file at all")
        assert main(["classify", str(path)]) == 1

    def test_empty_pcap_fails_cleanly(self, tmp_path, capsys):
        from repro.net.pcap import write_pcap

        path = tmp_path / "empty.pcap"
        write_pcap(path, [])
        assert main(["classify", str(path)]) == 1


class TestFingerprint:
    def test_unknown_mitigation(self, capsys):
        assert main(["fingerprint", "--mitigation", "wishful_thinking"]) == 1
        assert "unknown mitigation" in capsys.readouterr().err


class TestStudyObservability:
    """`repro study` with the observability flags (tiny run to stay fast)."""

    @pytest.fixture(scope="class")
    def study_outputs(self, tmp_path_factory):
        import json

        out = tmp_path_factory.mktemp("obs")
        metrics_path = out / "m.json"
        trace_path = out / "t.json"
        code = main([
            "study", "--duration", "45", "--apps", "4",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
            "--log-level", "error",
        ])
        assert code == 0
        return (json.loads(metrics_path.read_text()),
                json.loads(trace_path.read_text()))

    def test_metrics_out_is_valid_json_with_counters(self, study_outputs):
        metrics, _ = study_outputs
        assert metrics["capture_packets_total"]["type"] == "counter"
        total = sum(s["value"] for s in metrics["capture_packets_total"]["samples"])
        assert total > 0
        assert "sim_events_total" in metrics

    def test_metrics_round_trip_through_prometheus_text(self, study_outputs):
        """JSON snapshot -> registry -> Prometheus text -> parsed values,
        with no counter value lost along the way."""
        from repro.obs import MetricsRegistry, parse_prometheus_text

        metrics, _ = study_outputs
        registry = MetricsRegistry.from_dict(metrics)
        parsed = parse_prometheus_text(registry.to_prometheus_text())
        for name, entry in metrics.items():
            if entry["type"] != "counter":
                continue
            for sample in entry["samples"]:
                key = tuple(sorted(sample["labels"].items()))
                assert parsed[name][key] == sample["value"], name

    def test_trace_out_is_chrome_loadable(self, study_outputs):
        _, trace = study_outputs
        assert isinstance(trace["traceEvents"], list)
        names = {event["name"] for event in trace["traceEvents"]}
        from repro.core.pipeline import StudyPipeline

        assert {f"pipeline.{stage}" for stage in StudyPipeline.STAGES} <= names
        for event in trace["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0

    def test_log_level_writes_structured_lines(self, tmp_path, capsys):
        code = main([
            "study", "--duration", "20", "--apps", "2", "--log-level", "info",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "pipeline stage_start" in err
        assert "stage=build" in err


class TestProfileFlags:
    """`--profile-out` / `--profile-hz` on study and fleet."""

    TINY = ["--duration", "30", "--apps", "2"]

    def test_profile_flags_parse_on_both_subcommands(self):
        for command in ("study", "fleet"):
            args = build_parser().parse_args(
                [command, "--profile-out", "prof", "--profile-hz", "50"])
            assert args.profile_out == "prof"
            assert args.profile_hz == 50.0

    def test_profile_hz_requires_profile_out(self, capsys):
        assert main(["study", "--profile-hz", "50"] + self.TINY) == 2
        assert "--profile-out" in capsys.readouterr().err

    def test_non_positive_profile_hz_exits_2(self, tmp_path, capsys):
        out = str(tmp_path / "prof")
        assert main(["study", "--profile-out", out,
                     "--profile-hz", "-5"] + self.TINY) == 2
        assert "positive" in capsys.readouterr().err

    def test_profile_out_under_missing_dir_fails_before_run(
            self, tmp_path, capsys):
        bad = str(tmp_path / "no" / "such" / "prof")
        assert main(["study", "--profile-out", bad] + self.TINY) == 2
        assert "--profile-out" in capsys.readouterr().err

    def test_study_profile_out_writes_all_three_artifacts(
            self, tmp_path, capsys):
        import json

        from repro.obs.profile import (
            FLAMEGRAPH_NAME, RESOURCES_NAME, SPEEDSCOPE_NAME)

        out = tmp_path / "prof"
        code = main(["study", "--profile-out", str(out),
                     "--profile-hz", "211"] + self.TINY)
        assert code == 0
        assert "profile written to" in capsys.readouterr().err
        flame = (out / FLAMEGRAPH_NAME).read_text()
        for line in flame.splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0
        scope = json.loads((out / SPEEDSCOPE_NAME).read_text())
        assert scope["$schema"].startswith("https://www.speedscope.app")
        resources = json.loads((out / RESOURCES_NAME).read_text())
        assert resources["pipeline.build"]["cpu_seconds"] >= 0.0

    def test_study_stdout_identical_with_and_without_profiling(
            self, tmp_path, capsys):
        """The overhead contract's visible half: profiling must not
        change what the study computes or prints."""
        assert main(["study"] + self.TINY) == 0
        plain = capsys.readouterr().out
        out = str(tmp_path / "prof")
        assert main(["study", "--profile-out", out] + self.TINY) == 0
        assert capsys.readouterr().out == plain


class TestCapture:
    def test_writes_pcaps(self, tmp_path, capsys):
        assert main(["capture", str(tmp_path), "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "lab.pcap" in out
        assert (tmp_path / "lab.pcap").exists()
        assert list((tmp_path / "per-mac").glob("*.pcap"))


class TestFleet:
    """`repro fleet` on a small population (96 households, 3 shards)."""

    ARGS = ["fleet", "--seed", "5", "--households", "96",
            "--target-devices", "300", "--shard-size", "32", "--workers", "1"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.seed == 23 and args.households == 3860
        assert args.workers is None and args.shard_size is None
        assert args.fail_fast is False and args.resume is False

    def test_keep_going_and_fail_fast_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--keep-going", "--fail-fast"])

    def test_runs_and_prints_table_and_summary(self, tmp_path, capsys):
        assert main(self.ARGS + ["--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "3 shards (3 computed, 0 cached, 0 failed)" in out
        assert "3 writes" in out

    def test_warm_cache_then_json_summary(self, tmp_path, capsys):
        import json

        cache = tmp_path / "cache"
        assert main(self.ARGS + ["--cache-dir", str(cache)]) == 0
        json_path = tmp_path / "fleet.json"
        assert main(self.ARGS + ["--cache-dir", str(cache),
                                 "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "(0 computed, 3 cached, 0 failed)" in out
        payload = json.loads(json_path.read_text())
        assert payload["summary"]["cache_hits"] == 3
        assert payload["report"]["dataset_households"] == 96
        assert len(payload["shards"]) == 3

    def test_resume_without_manifest_exits_2(self, tmp_path, capsys):
        assert main(self.ARGS + ["--cache-dir", str(tmp_path), "--resume"]) == 2
        assert "no readable manifest" in capsys.readouterr().err

    def test_resume_without_cache_dir_exits_2(self, capsys):
        assert main(self.ARGS + ["--resume"]) == 2
        assert "cache" in capsys.readouterr().err

    def test_invalid_fault_plan_exits_2(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('{"shards": {"fail_rate": 7}}', encoding="utf-8")
        assert main(self.ARGS + ["--fault-plan", str(plan)]) == 2
        err = capsys.readouterr().err
        assert "--fault-plan" in err and "out of [0, 1]" in err

    def test_fail_fast_shard_failure_exits_1(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('{"shards": {"fail": [1]}}', encoding="utf-8")
        assert main(self.ARGS + ["--fault-plan", str(plan), "--fail-fast",
                                 "--shard-retries", "0"]) == 1
        assert "shard 1" in capsys.readouterr().err

    def test_keep_going_shard_failure_partial_report(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('{"shards": {"fail": [1]}}', encoding="utf-8")
        assert main(self.ARGS + ["--fault-plan", str(plan),
                                 "--shard-retries", "0"]) == 0
        captured = capsys.readouterr()
        assert "1 failed" in captured.out
        assert "shard 1" in captured.err

    def test_supervision_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.shard_retries == 2
        assert args.retry_backoff == 0.5
        assert args.shard_deadline is None

    def test_deterministic_fault_quarantined_after_retries(
            self, tmp_path, capsys):
        """A fault keyed on the shard index fails every attempt: the
        default retry budget exhausts and the shard is quarantined, but
        the run still completes with a partial report (exit 0)."""
        plan = tmp_path / "plan.json"
        plan.write_text('{"shards": {"fail": [1]}}', encoding="utf-8")
        assert main(self.ARGS + ["--fault-plan", str(plan),
                                 "--retry-backoff", "0.01"]) == 0
        captured = capsys.readouterr()
        assert "1 quarantined" in captured.out
        assert "poison shard" in captured.err
        assert "3 attempts" in captured.err

    def test_metrics_out_includes_fleet_counters(self, tmp_path):
        import json

        metrics_path = tmp_path / "m.json"
        assert main(self.ARGS + ["--cache-dir", str(tmp_path / "c"),
                                 "--metrics-out", str(metrics_path)]) == 0
        metrics = json.loads(metrics_path.read_text())
        shard_states = {
            tuple(sorted(sample["labels"].items())): sample["value"]
            for sample in metrics["fleet_shards_total"]["samples"]
        }
        assert shard_states[(("state", "completed"),)] == 3
        assert "fleet_cache_writes_total" in metrics

    def test_bad_json_path_fails_before_run(self, tmp_path, capsys):
        missing = tmp_path / "no-such-dir" / "fleet.json"
        assert main(["fleet", "--json", str(missing)]) == 2
        assert "--json" in capsys.readouterr().err


class TestEventStream:
    """`--events-out` NDJSON streaming on study and fleet."""

    FLEET = TestFleet.ARGS

    def _events(self, path):
        import json

        return [json.loads(line) for line in
                path.read_text().splitlines()]

    def test_progress_flags_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--progress", "--no-progress"])

    def test_events_out_parses_on_both_subcommands(self):
        for command in ("study", "fleet"):
            args = build_parser().parse_args([command, "--events-out", "-"])
            assert args.events_out == "-"

    def test_bad_events_dir_fails_before_run(self, tmp_path, capsys):
        missing = tmp_path / "no-such-dir" / "e.ndjson"
        assert main(["fleet", "--events-out", str(missing)]) == 2
        assert "--events-out" in capsys.readouterr().err

    def test_study_event_stream_schema(self, tmp_path, capsys):
        events_path = tmp_path / "events.ndjson"
        assert main(["study", "--duration", "30", "--apps", "2",
                     "--events-out", str(events_path)]) == 0
        assert "events written to" in capsys.readouterr().err
        records = self._events(events_path)
        names = [record["event"] for record in records]
        assert names[0] == "run_start" and names[-1] == "run_end"
        assert "stage_start" in names and "stage_end" in names
        assert "heartbeat" in names  # simulator liveness hook fired
        for index, record in enumerate(records):
            assert record["v"] == 1
            assert record["seq"] == index + 1
            assert record["wall"] > 0 and record["pid"] > 0
        assert records[-1]["complete"] is True

    def test_fleet_event_stream_shard_lifecycle(self, tmp_path):
        events_path = tmp_path / "events.ndjson"
        assert main(self.FLEET + ["--events-out", str(events_path),
                                  "--no-progress"]) == 0
        names = [record["event"] for record in self._events(events_path)]
        assert names.count("shard_queued") == 3
        assert names.count("shard_running") == 3
        assert names.count("shard_done") == 3
        assert names[-1] == "run_end"

    def test_fleet_failure_still_writes_telemetry(self, tmp_path, capsys):
        """The telemetry-on-failure contract: exit 1, outputs on disk."""
        import json

        plan = tmp_path / "plan.json"
        plan.write_text('{"shards": {"fail": [1]}}', encoding="utf-8")
        metrics_path = tmp_path / "m.json"
        events_path = tmp_path / "e.ndjson"
        code = main(self.FLEET + [
            "--fault-plan", str(plan), "--fail-fast",
            "--shard-retries", "0",
            "--metrics-out", str(metrics_path),
            "--events-out", str(events_path),
        ])
        assert code == 1
        assert "shard 1" in capsys.readouterr().err

        metrics = json.loads(metrics_path.read_text())
        states = {tuple(sorted(s["labels"].items())): s["value"]
                  for s in metrics["fleet_shards_total"]["samples"]}
        assert states[(("state", "failed"),)] == 1

        records = self._events(events_path)
        names = [record["event"] for record in records]
        assert "shard_failed" in names
        assert names[-1] == "run_end"
        assert records[-1]["complete"] is False
        assert records[-1]["outcome"] == "failed"

    def test_retry_and_quarantine_events_and_counters(self, tmp_path):
        """Supervision telemetry: shard_retry per re-dispatch, one
        shard_quarantined on budget exhaustion, run_end outcome ok."""
        import json

        plan = tmp_path / "plan.json"
        plan.write_text('{"shards": {"fail": [1]}}', encoding="utf-8")
        metrics_path = tmp_path / "m.json"
        events_path = tmp_path / "e.ndjson"
        code = main(self.FLEET + [
            "--fault-plan", str(plan), "--keep-going",
            "--retry-backoff", "0.01",
            "--metrics-out", str(metrics_path),
            "--events-out", str(events_path),
        ])
        assert code == 0

        metrics = json.loads(metrics_path.read_text())
        assert metrics["fleet_shard_retries_total"]["samples"][0]["value"] == 2
        assert (metrics["fleet_shards_quarantined_total"]["samples"][0]
                ["value"] == 1)

        records = self._events(events_path)
        names = [record["event"] for record in records]
        assert names.count("shard_retry") == 2
        assert names.count("shard_quarantined") == 1
        retry = records[names.index("shard_retry")]
        assert retry["shard"] == 1 and retry["attempt"] == 1
        assert retry["retries_left"] == 1
        assert names[-1] == "run_end"
        assert records[-1]["outcome"] == "ok"

    def test_run_end_outcome_on_success(self, tmp_path):
        for argv in (
                ["study", "--duration", "30", "--apps", "2"],
                self.FLEET + ["--no-progress"]):
            events_path = tmp_path / f"{argv[0]}.ndjson"
            assert main(argv + ["--events-out", str(events_path)]) == 0
            records = self._events(events_path)
            assert records[-1]["event"] == "run_end"
            assert records[-1]["outcome"] == "ok"
