"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("study", "classify", "scan", "fingerprint", "catalog", "capture"):
            args = parser.parse_args(
                [command] + (["x.pcap"] if command == "classify" else [])
                + (["/tmp/x"] if command == "capture" else [])
            )
            assert args.command == command

    def test_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.seed == 7 and args.duration == 900.0


class TestCatalog:
    def test_prints_table3(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "Voice Assistant" in out
        assert "Amazon (17)" in out

    def test_verbose_lists_devices(self, capsys):
        assert main(["catalog", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "philips-hue-hub-1" in out
        assert "Geolocation" in out  # TP-Link exposure column


class TestClassify:
    def test_classifies_pcap(self, tmp_path, capsys, mini_testbed):
        mini_testbed.run(120.0)
        path = tmp_path / "lab.pcap"
        mini_testbed.lan.capture.write_pcap(path)
        assert main(["classify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mDNS" in out and "packets" in out

    def test_crossval_flag(self, tmp_path, capsys, mini_testbed):
        mini_testbed.run(60.0)
        path = tmp_path / "lab.pcap"
        mini_testbed.lan.capture.write_pcap(path)
        assert main(["classify", str(path), "--crossval"]) == 0
        assert "cross-validation" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["classify", str(tmp_path / "nope.pcap")]) == 1
        assert "error" in capsys.readouterr().err

    def test_non_pcap_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "garbage.pcap"
        path.write_bytes(b"this is not a capture file at all")
        assert main(["classify", str(path)]) == 1

    def test_empty_pcap_fails_cleanly(self, tmp_path, capsys):
        from repro.net.pcap import write_pcap

        path = tmp_path / "empty.pcap"
        write_pcap(path, [])
        assert main(["classify", str(path)]) == 1


class TestFingerprint:
    def test_unknown_mitigation(self, capsys):
        assert main(["fingerprint", "--mitigation", "wishful_thinking"]) == 1
        assert "unknown mitigation" in capsys.readouterr().err


class TestCapture:
    def test_writes_pcaps(self, tmp_path, capsys):
        assert main(["capture", str(tmp_path), "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "lab.pcap" in out
        assert (tmp_path / "lab.pcap").exists()
        assert list((tmp_path / "per-mac").glob("*.pcap"))
