"""Fleet telemetry merge: whole-run counters at any worker count.

The acceptance bar for the cross-process merge: ``repro fleet
--workers 4 --metrics-out`` must agree with ``--workers 1`` on every
counter total (wall-clock histograms and ``from_cache`` labels are the
only sanctioned differences), and cache replays must resurface the
stored worker telemetry labelled ``from_cache="true"``.
"""

from __future__ import annotations

from repro.fleet import run_fleet
from repro.obs import MetricsRegistry, Tracer, use_obs
from repro.obs.context import Observability
from repro.obs.logging import NullLogManager


def _fleet_metrics(spec, workers, cache_dir=None):
    obs = Observability(metrics=MetricsRegistry(), tracer=Tracer(),
                        logs=NullLogManager(), enabled=True)
    with use_obs(obs):
        result = run_fleet(spec, workers=workers,
                           cache_dir=str(cache_dir) if cache_dir else None)
    return result, obs


def _counter_totals(registry: MetricsRegistry):
    """name -> {label_key: value} for every counter family."""
    totals = {}
    for name, entry in registry.to_dict().items():
        if entry["type"] != "counter":
            continue
        totals[name] = {
            tuple(sorted(sample["labels"].items())): sample["value"]
            for sample in entry["samples"]
        }
    return totals


class TestWorkerCountEquivalence:
    def test_counters_identical_at_1_and_4_workers(self, small_spec):
        _, obs_1 = _fleet_metrics(small_spec, workers=1)
        _, obs_4 = _fleet_metrics(small_spec, workers=4)
        totals_1 = _counter_totals(obs_1.metrics)
        totals_4 = _counter_totals(obs_4.metrics)
        assert totals_1 == totals_4
        # The merge actually carried worker-side counters home.
        assert totals_1["fleet_worker_households_total"][()] == 96
        assert totals_1["fleet_worker_devices_total"][()] > 0
        shard_states = totals_1["fleet_shards_total"]
        assert shard_states[(("state", "completed"),)] == 3

    def test_worker_spans_absorbed_per_shard(self, small_spec):
        _, obs = _fleet_metrics(small_spec, workers=2)
        tree = obs.tracer.to_tree()
        run_roots = [root for root in tree if root["name"] == "fleet.run"]
        assert len(run_roots) == 1

        def collect(node, out):
            out.append(node)
            for child in node.get("children", []):
                collect(child, out)
            return out

        nodes = collect(run_roots[0], [])
        workers = [n for n in nodes if n["name"] == "fleet.worker"]
        assert len(workers) == 3  # one absorbed subtree per shard
        assert {w["attrs"]["from_cache"] for w in workers} == {"false"}
        for worker in workers:
            child_names = {c["name"] for c in worker.get("children", [])}
            assert {"worker.generate", "worker.analyze"} <= child_names


class TestCacheReplayTelemetry:
    def test_cached_shards_replay_with_from_cache_label(self, small_spec,
                                                        tmp_path):
        _, cold = _fleet_metrics(small_spec, workers=1, cache_dir=tmp_path)
        _, warm = _fleet_metrics(small_spec, workers=2, cache_dir=tmp_path)

        cold_households = _counter_totals(cold.metrics)[
            "fleet_worker_households_total"]
        warm_households = _counter_totals(warm.metrics)[
            "fleet_worker_households_total"]
        # Fresh run: unlabelled. Warm run: same total, from_cache="true".
        assert cold_households == {(): 96}
        assert warm_households == {(("from_cache", "true"),): 96}

        warm_spans = [root for root in warm.tracer.to_tree()
                      if root["name"] == "fleet.run"]
        flags = set()

        def walk(node):
            if node["name"] == "fleet.worker":
                flags.add(node["attrs"]["from_cache"])
            for child in node.get("children", []):
                walk(child)

        walk(warm_spans[0])
        assert flags == {"true"}

    def test_pre_snapshot_cache_entries_are_tolerated(self, small_spec,
                                                      tmp_path, capsys):
        """Cache payloads written before the obs key existed still load."""
        import json

        from repro.fleet.cache import ShardCache

        _, _ = _fleet_metrics(small_spec, workers=1, cache_dir=tmp_path)
        cache = ShardCache(tmp_path)
        # Strip the obs snapshot from every stored payload in place.
        for path in sorted(tmp_path.rglob("*.json")):
            payload = json.loads(path.read_text())
            if isinstance(payload, dict) and "obs" in payload:
                del payload["obs"]
                path.write_text(json.dumps(payload))
        result, warm = _fleet_metrics(small_spec, workers=1,
                                      cache_dir=tmp_path)
        assert result.cache_hits == 3
        totals = _counter_totals(warm.metrics)
        assert "fleet_worker_households_total" not in totals
        assert totals["fleet_shards_total"][(("state", "cached"),)] == 3
