"""Shard failure isolation, fail-fast, and shard-fault plan validation."""

import pytest

from repro.faults import FaultPlan, ShardFaults
from repro.faults.plan import FaultPlanError
from repro.fleet import FleetError, FleetSpec, run_fleet


class TestKeepGoing:
    def test_failures_are_isolated_into_partial_report(self, small_spec):
        plan = FaultPlan.from_dict({"shards": {"fail": [0]}})
        result = run_fleet(small_spec, workers=1, fault_plan=plan,
                           keep_going=True)
        assert not result.complete
        assert [f.shard for f in result.failures] == [0]
        failure = result.failures[0]
        assert "ShardFaultInjected" in failure.error
        assert failure.traceback  # full worker traceback is preserved
        # The merge covers the surviving shards only.
        assert result.report is not None
        assert result.report.dataset_households == small_spec.households - 32
        states = {s.index: s.state for s in result.shard_states}
        assert states == {0: "failed", 1: "completed", 2: "completed"}

    def test_all_shards_failed_yields_no_report(self, small_spec):
        plan = FaultPlan.from_dict({"shards": {"fail": [0, 1, 2]}})
        result = run_fleet(small_spec, workers=1, fault_plan=plan,
                           keep_going=True)
        assert result.report is None
        assert len(result.failures) == 3

    def test_failed_shard_never_pollutes_cache(self, tmp_path, small_spec):
        plan = FaultPlan.from_dict({"shards": {"fail": [1]}})
        result = run_fleet(small_spec, workers=1, cache_dir=tmp_path,
                           fault_plan=plan, keep_going=True)
        assert result.cache_writes == 2
        assert len(list(tmp_path.glob("shard-*.json"))) == 2


class TestFailFast:
    def test_fail_fast_raises_fleet_error(self, small_spec):
        plan = FaultPlan.from_dict({"shards": {"fail": [1]}})
        with pytest.raises(FleetError, match="shard 1"):
            run_fleet(small_spec, workers=1, fault_plan=plan, keep_going=False)

    def test_siblings_still_reach_cache_before_raise(self, tmp_path, small_spec):
        """Fail-fast still drains in-flight siblings, so their results
        are checkpointed and a later resume only recomputes the victim."""
        plan = FaultPlan.from_dict({"shards": {"fail": [1]}})
        with pytest.raises(FleetError):
            run_fleet(small_spec, workers=2, cache_dir=tmp_path,
                      fault_plan=plan, keep_going=False)
        assert len(list(tmp_path.glob("shard-*.json"))) == 2
        second = run_fleet(small_spec, workers=2, cache_dir=tmp_path,
                           resume=True)
        assert second.cache_hits == 2 and second.cache_misses == 1


class TestFailRate:
    def test_fail_rate_is_deterministic(self, small_spec):
        plan = FaultPlan.from_dict({"shards": {"fail_rate": 0.5}, "seed_salt": 3})
        first = run_fleet(small_spec, workers=1, fault_plan=plan)
        second = run_fleet(small_spec, workers=1, fault_plan=plan)
        assert ([f.shard for f in first.failures]
                == [f.shard for f in second.failures])

    def test_fail_rate_one_kills_everything(self, small_spec):
        plan = FaultPlan.from_dict({"shards": {"fail_rate": 1.0}})
        result = run_fleet(small_spec, workers=1, fault_plan=plan)
        assert len(result.failures) == len(small_spec.shards())

    def test_out_of_range_indices_are_ignored(self, small_spec):
        plan = FaultPlan.from_dict({"shards": {"fail": [500]}})
        result = run_fleet(small_spec, workers=1, fault_plan=plan)
        assert result.complete


class TestShardFaultPlan:
    def test_shards_only_plan_stays_lan_empty(self):
        """A shards-only plan must leave `repro study` byte-identical:
        is_empty (the LAN question) stays True."""
        plan = FaultPlan.from_dict({"shards": {"fail": [1]}})
        assert plan.is_empty
        assert plan.has_shard_faults

    def test_noop_shards_section(self):
        plan = FaultPlan.from_dict({"shards": {}})
        assert plan.shards == ShardFaults()
        assert not plan.has_shard_faults

    def test_round_trip(self):
        plan = FaultPlan.from_dict({"shards": {"fail": [3, 1], "fail_rate": 0.25}})
        assert plan.shards.fail == (3, 1)
        assert plan.shards.fail_rate == 0.25

    @pytest.mark.parametrize("raw", [
        {"shards": {"fail": "1"}},
        {"shards": {"fail": [-1]}},
        {"shards": {"fail": [True]}},
        {"shards": {"fail_rate": 1.5}},
        {"shards": {"fail_rate": -0.1}},
        {"shards": {"explode": True}},
    ])
    def test_invalid_sections_rejected(self, raw):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict(raw)

    def test_no_validate_oui_spec_is_separate_population(self, small_spec):
        """Sanity: the ablation flag flows through run_shard (not merged
        with the validated population)."""
        ablated = FleetSpec(**{**small_spec.to_dict(), "validate_oui": False})
        base = run_fleet(small_spec, workers=1).report
        off = run_fleet(ablated, workers=1).report
        mac = base.row_for("mac")
        mac_off = off.row_for("mac")
        assert mac is not None and mac_off is not None
        assert mac_off.devices >= mac.devices
