"""Checkpoint/resume: killed shards recover from the cache."""

import pytest

from repro.faults import FaultPlan
from repro.fleet import FleetConfigError, FleetSpec, run_fleet
from repro.fleet.runner import FleetRunner

KILL_MIDDLE = FaultPlan.from_dict({"shards": {"fail": [1]}})


class TestResume:
    def test_resume_after_shard_kill(self, tmp_path, small_spec,
                                     small_serial_report):
        first = run_fleet(small_spec, workers=1, cache_dir=tmp_path,
                          fault_plan=KILL_MIDDLE, keep_going=True)
        assert not first.complete
        assert [f.shard for f in first.failures] == [1]
        assert first.cache_writes == 2  # the two surviving shards

        second = run_fleet(small_spec, workers=1, cache_dir=tmp_path,
                           resume=True)
        assert second.resumed
        assert second.complete
        assert second.cache_hits == 2
        assert second.cache_misses == 1  # only the killed shard recomputes
        assert second.report.to_json() == small_serial_report.to_json()

    def test_resume_after_parallel_kill(self, tmp_path, small_spec,
                                        small_serial_report):
        run_fleet(small_spec, workers=2, cache_dir=tmp_path,
                  fault_plan=KILL_MIDDLE, keep_going=True)
        second = run_fleet(small_spec, workers=2, cache_dir=tmp_path,
                           resume=True)
        assert second.complete
        assert second.report.to_json() == small_serial_report.to_json()


class TestResumeValidation:
    def test_resume_requires_cache_dir(self, small_spec):
        with pytest.raises(FleetConfigError):
            FleetRunner(small_spec, resume=True)

    def test_resume_without_manifest_rejected(self, tmp_path, small_spec):
        with pytest.raises(FleetConfigError, match="no readable manifest"):
            run_fleet(small_spec, workers=1, cache_dir=tmp_path, resume=True)

    def test_resume_with_different_spec_rejected(self, tmp_path, small_spec):
        run_fleet(small_spec, workers=1, cache_dir=tmp_path)
        other = FleetSpec(**{**small_spec.to_dict(), "households": 64})
        with pytest.raises(FleetConfigError, match="different fleet"):
            run_fleet(other, workers=1, cache_dir=tmp_path, resume=True)

    def test_resume_with_stale_code_version_rejected(self, tmp_path,
                                                     small_spec, monkeypatch):
        run_fleet(small_spec, workers=1, cache_dir=tmp_path)
        monkeypatch.setattr("repro.fleet.runner.code_version",
                            lambda: "somethingelse")
        with pytest.raises(FleetConfigError, match="code changed"):
            run_fleet(small_spec, workers=1, cache_dir=tmp_path, resume=True)
