"""Shared fleet fixtures: a small population spec + its serial baseline.

The full paper population (3,860 households) takes seconds per run;
these tests use a 96-household spec split into three shards so every
serial/fleet comparison stays fast while still exercising multi-shard
merging.
"""

from __future__ import annotations

import pytest

from repro.core.fingerprint import FingerprintReport, fingerprint_households
from repro.fleet import FleetSpec
from repro.inspector.generate import generate_dataset

SMALL = dict(
    seed=5,
    households=96,
    target_devices=300,
)


@pytest.fixture
def small_spec() -> FleetSpec:
    return FleetSpec(shard_size=32, **SMALL)


@pytest.fixture(scope="session")
def small_serial_report() -> FingerprintReport:
    """The serial reference report for the small spec (built once)."""
    dataset = generate_dataset(**SMALL)
    return fingerprint_households(dataset=dataset)
