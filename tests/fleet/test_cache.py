"""Content-addressed shard cache: cold writes, warm hits, corruption."""

import json

import pytest

from repro.fleet import FleetSpec, ShardCache, run_fleet
from repro.fleet.runner import MANIFEST_NAME


class TestColdWarm:
    def test_cold_run_writes_every_shard(self, tmp_path, small_spec):
        result = run_fleet(small_spec, workers=1, cache_dir=tmp_path)
        shard_count = len(small_spec.shards())
        assert result.cache_misses == shard_count
        assert result.cache_writes == shard_count
        assert result.cache_hits == 0
        assert len(list(tmp_path.glob("shard-*.json"))) == shard_count

    def test_warm_run_serves_without_computing(self, tmp_path, small_spec,
                                               small_serial_report, monkeypatch):
        run_fleet(small_spec, workers=1, cache_dir=tmp_path)

        def boom(*args, **kwargs):
            raise AssertionError("warm run must not recompute any shard")

        monkeypatch.setattr("repro.fleet.runner.run_shard", boom)
        warm = run_fleet(small_spec, workers=1, cache_dir=tmp_path)
        assert warm.cache_hits == len(small_spec.shards())
        assert warm.cache_misses == 0
        assert warm.cache_writes == 0
        assert all(s.state == "cached" for s in warm.shard_states)
        assert warm.report.to_json() == small_serial_report.to_json()

    def test_different_seed_misses(self, tmp_path, small_spec):
        run_fleet(small_spec, workers=1, cache_dir=tmp_path)
        other = FleetSpec(**{**small_spec.to_dict(), "seed": 6})
        result = run_fleet(other, workers=1, cache_dir=tmp_path)
        assert result.cache_hits == 0

    def test_repartition_reuses_overlapping_ranges(self, tmp_path, small_spec):
        """shard_size is not part of the key, so identical [start, stop)
        ranges hit even when the partition around them changed."""
        run_fleet(small_spec, workers=1, cache_dir=tmp_path)  # 32-sized shards
        half = FleetSpec(**{**small_spec.to_dict(), "shard_size": 16})
        result = run_fleet(half, workers=1, cache_dir=tmp_path)
        # Ranges differ (16 vs 32 households) so nothing hits...
        assert result.cache_hits == 0
        # ...but re-running the original partition still hits everything.
        again = run_fleet(small_spec, workers=1, cache_dir=tmp_path)
        assert again.cache_hits == len(small_spec.shards())


class TestRobustness:
    def test_corrupt_entry_is_recomputed(self, tmp_path, small_spec,
                                         small_serial_report):
        run_fleet(small_spec, workers=1, cache_dir=tmp_path)
        victim = sorted(tmp_path.glob("shard-*.json"))[0]
        victim.write_text("{not json", encoding="utf-8")
        result = run_fleet(small_spec, workers=1, cache_dir=tmp_path)
        assert result.cache_hits == len(small_spec.shards()) - 1
        assert result.cache_misses == 1
        assert result.cache_writes == 1
        assert result.report.to_json() == small_serial_report.to_json()

    def test_cache_creates_directory(self, tmp_path, small_spec):
        nested = tmp_path / "a" / "b"
        result = run_fleet(small_spec, workers=1, cache_dir=nested)
        assert result.cache_writes == len(small_spec.shards())

    def test_stats_shape(self, tmp_path):
        cache = ShardCache(tmp_path)
        assert cache.load("0" * 32) is None
        cache.store("0" * 32, {"x": 1})
        assert cache.load("0" * 32) == {"x": 1}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["writes"] == 1


class TestManifest:
    def test_manifest_records_every_shard(self, tmp_path, small_spec):
        run_fleet(small_spec, workers=1, cache_dir=tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["spec"] == small_spec.to_dict()
        assert len(manifest["shards"]) == len(small_spec.shards())
        assert all(entry["state"] in ("cached", "completed")
                   for entry in manifest["shards"].values())

    def test_no_cache_dir_means_no_manifest_or_stats(self, small_spec):
        result = run_fleet(small_spec, workers=1)
        assert result.cache_hits == 0
        assert result.cache_misses == 0
        assert result.cache_writes == 0
