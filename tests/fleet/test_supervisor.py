"""Run supervision: deadlines, retries, quarantine, graceful shutdown.

Unit coverage for :mod:`repro.fleet.supervisor` (policy objects, the
claim-file heartbeat channel, signal conversion) plus the integration
contracts from the runner: transient failures retry to a byte-identical
report, poison shards quarantine, hung workers are reaped within their
deadline, a SIGTERM'd CLI run exits 143 with a flushed manifest, and a
``--resume`` after any interruption merges byte-identically.
"""

from __future__ import annotations

import glob
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

import repro
from repro.faults import FaultPlan
from repro.fleet import (
    FleetError,
    FleetSpec,
    RunInterrupted,
    default_shard_deadline,
    default_shard_retries,
    interrupt_guard,
    run_fleet,
)
from repro.fleet.runner import FleetConfigError, FleetRunner
from repro.fleet.spec import ShardRange
from repro.fleet.supervisor import (
    MIN_SHARD_DEADLINE,
    ShardSupervisor,
    WorkerClaim,
    claim_age,
    read_claim_pid,
    reap,
)
from repro.obs import MetricsRegistry, Tracer, use_obs
from repro.obs.context import Observability
from repro.obs.events import EventBus
from repro.obs.logging import NullLogManager


def _obs_with_bus() -> Observability:
    return Observability(metrics=MetricsRegistry(), tracer=Tracer(),
                         logs=NullLogManager(), enabled=True,
                         events=EventBus())


class TestDeadlinePolicy:
    def test_derived_deadline_scales_with_households(self):
        assert default_shard_deadline(1000) == 500.0
        assert default_shard_deadline(10) == MIN_SHARD_DEADLINE

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_DEADLINE", "7.5")
        assert default_shard_deadline(100000) == 7.5

    def test_bad_env_override_falls_back_to_derived(self, monkeypatch):
        for bad in ("banana", "0", "-3"):
            monkeypatch.setenv("REPRO_FLEET_DEADLINE", bad)
            assert default_shard_deadline(10) == MIN_SHARD_DEADLINE

    def test_retry_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_RETRIES", raising=False)
        assert default_shard_retries() == 0
        monkeypatch.setenv("REPRO_FLEET_RETRIES", "3")
        assert default_shard_retries() == 3
        monkeypatch.setenv("REPRO_FLEET_RETRIES", "-2")
        assert default_shard_retries() == 0
        monkeypatch.setenv("REPRO_FLEET_RETRIES", "nope")
        assert default_shard_retries() == 0

    def test_runner_rejects_bad_supervision_config(self, small_spec):
        with pytest.raises(FleetConfigError):
            FleetRunner(small_spec, retries=-1)
        with pytest.raises(FleetConfigError):
            FleetRunner(small_spec, retry_backoff=-0.5)
        with pytest.raises(FleetConfigError):
            FleetRunner(small_spec, shard_deadline=0.0)


class TestRetryPolicy:
    def test_backoff_doubles_per_failed_attempt(self):
        sup = ShardSupervisor(retries=3, backoff=0.5)
        assert [sup.backoff_for(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]
        assert ShardSupervisor(backoff=0.0).backoff_for(5) == 0.0

    def test_attempts_consume_budget_then_exhaust(self):
        sup = ShardSupervisor(retries=2, backoff=0.5, clock=lambda: 100.0)
        task = sup.task_for(ShardRange(index=0, start=0, stop=32))
        assert sup.on_attempt_failed(task, "boom") == "retry"
        assert task.not_before == 100.5
        assert sup.on_attempt_failed(task, "boom") == "retry"
        assert task.not_before == 101.0  # second wait doubles
        assert sup.on_attempt_failed(task, "boom") == "exhausted"
        assert task.attempts == 3
        assert sup.retries_used == 2
        assert task.last_error == "boom"

    def test_zero_retries_exhaust_immediately(self):
        sup = ShardSupervisor(retries=0)
        task = sup.task_for(ShardRange(index=0, start=0, stop=32))
        assert sup.on_attempt_failed(task, "boom") == "exhausted"
        assert sup.retries_used == 0


class TestWorkerClaim:
    def test_acquire_writes_pid_and_fresh_mtime(self, tmp_path):
        path = str(tmp_path / "shard-0.claim")
        WorkerClaim.acquire(path)
        assert read_claim_pid(path) == os.getpid()
        assert claim_age(path) < 5.0

    def test_touch_bumps_mtime(self, tmp_path):
        path = str(tmp_path / "shard-0.claim")
        claim = WorkerClaim.acquire(path)
        stale = time.time() - 100.0
        os.utime(path, (stale, stale))
        assert claim_age(path) > 90.0
        claim.touch()
        assert claim_age(path) < 5.0

    def test_missing_or_garbage_claims_read_as_none(self, tmp_path):
        gone = str(tmp_path / "never-written.claim")
        assert read_claim_pid(gone) is None
        assert claim_age(gone) is None
        garbage = tmp_path / "garbage.claim"
        garbage.write_text("not json", encoding="utf-8")
        assert read_claim_pid(str(garbage)) is None

    def test_pathless_claim_is_inert(self):
        claim = WorkerClaim.acquire(None)
        claim.touch()  # must not raise
        assert read_claim_pid(None) is None
        assert claim_age(None) is None


class TestWatchdogScan:
    def test_silence_measured_from_dispatch_without_claim(self, tmp_path):
        clock = {"t": 0.0}
        sup = ShardSupervisor(deadline=10.0, clock=lambda: clock["t"])
        task = sup.task_for(ShardRange(index=0, start=0, stop=32),
                            claim_path=str(tmp_path / "x.claim"))
        sup.record_dispatch(task)
        clock["t"] = 5.0
        assert sup.overdue([task]) == []
        clock["t"] = 11.0
        verdicts = sup.overdue([task])
        assert len(verdicts) == 1
        assert verdicts[0].pid is None  # no worker ever claimed

    def test_heartbeating_worker_is_never_declared_hung(self, tmp_path):
        clock = {"t": 0.0}
        sup = ShardSupervisor(deadline=10.0, clock=lambda: clock["t"])
        task = sup.task_for(ShardRange(index=0, start=0, stop=32),
                            claim_path=str(tmp_path / "x.claim"))
        sup.record_dispatch(task)
        WorkerClaim.acquire(task.claim_path)  # fresh wall-clock mtime
        clock["t"] = 1000.0  # far past any deadline on the monotonic axis
        assert sup.overdue([task]) == []

    def test_stale_claim_is_overdue_with_pid(self, tmp_path):
        sup = ShardSupervisor(deadline=10.0)
        task = sup.task_for(ShardRange(index=0, start=0, stop=32),
                            claim_path=str(tmp_path / "x.claim"))
        sup.record_dispatch(task)
        WorkerClaim.acquire(task.claim_path)
        stale = time.time() - 60.0
        os.utime(task.claim_path, (stale, stale))
        verdicts = sup.overdue([task])
        assert len(verdicts) == 1
        assert verdicts[0].pid == os.getpid()
        assert verdicts[0].silent_seconds > 10.0

    def test_note_timeout_records_the_verdict(self):
        sup = ShardSupervisor(deadline=5.0)
        task = sup.task_for(ShardRange(index=0, start=0, stop=32))
        sup.note_timeout(task)
        assert sup.watchdog_timeouts == 1
        assert "WatchdogTimeout" in task.last_error
        assert "5.0s" in task.last_error


class TestInterruptConversion:
    def test_exit_codes_follow_128_plus_signum(self):
        assert RunInterrupted(signal.SIGINT).exit_code == 130
        assert RunInterrupted(signal.SIGTERM).exit_code == 143
        assert isinstance(RunInterrupted(), KeyboardInterrupt)

    def test_guard_turns_sigterm_into_run_interrupted(self):
        with pytest.raises(RunInterrupted) as excinfo:
            with interrupt_guard():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5.0)  # interrupted long before this elapses
        assert excinfo.value.signum == signal.SIGTERM
        assert excinfo.value.exit_code == 143

    def test_guard_restores_previous_handlers(self):
        before = signal.getsignal(signal.SIGTERM)
        with interrupt_guard():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_reap_refuses_bad_targets(self):
        assert reap(None) is False
        assert reap(0) is False
        assert reap(os.getpid()) is False

    def test_reap_kills_a_live_child(self):
        child = subprocess.Popen([sys.executable, "-c",
                                  "import time; time.sleep(60)"])
        try:
            assert reap(child.pid) is True
            assert child.wait(timeout=10) == -signal.SIGKILL
        finally:
            if child.poll() is None:  # pragma: no cover - reap failed
                child.kill()


class TestRetryIntegration:
    def test_transient_failure_retries_to_identical_bytes(
            self, small_spec, small_serial_report, monkeypatch):
        """A shard that crashes once and then succeeds must not change
        the merged report by a byte."""
        import repro.fleet.runner as runner_mod

        real = runner_mod.run_shard
        crashed = {"done": False}

        def flaky(spec_dict, start, stop, **kwargs):
            if start == 32 and not crashed["done"]:
                crashed["done"] = True
                raise RuntimeError("transient worker crash")
            return real(spec_dict, start, stop, **kwargs)

        monkeypatch.setattr(runner_mod, "run_shard", flaky)
        result = run_fleet(small_spec, workers=1, retries=2,
                           retry_backoff=0.01)
        assert crashed["done"]
        assert result.complete
        assert result.retries_total == 1
        attempts = {s.index: s.attempts for s in result.shard_states}
        assert attempts == {0: 1, 1: 2, 2: 1}
        assert result.report.to_json() == small_serial_report.to_json()

    def test_poison_shard_quarantined_after_budget(self, small_spec):
        plan = FaultPlan.from_dict({"shards": {"fail": [1]}})
        result = run_fleet(small_spec, workers=1, fault_plan=plan,
                           retries=2, retry_backoff=0.01)
        assert not result.complete
        assert result.failures == []
        assert [q.shard for q in result.quarantined] == [1]
        poison = result.quarantined[0]
        assert poison.attempts == 3
        assert "ShardFaultInjected" in poison.error
        states = {s.index: s.state for s in result.shard_states}
        assert states == {0: "completed", 1: "quarantined", 2: "completed"}
        # The merge covers the surviving shards only.
        assert result.report.dataset_households == small_spec.households - 32

    def test_fail_fast_raises_on_quarantine(self, small_spec):
        plan = FaultPlan.from_dict({"shards": {"fail": [1]}})
        with pytest.raises(FleetError, match="quarantined after 3 attempts"):
            run_fleet(small_spec, workers=1, fault_plan=plan, retries=2,
                      retry_backoff=0.01, keep_going=False)

    def test_supervision_flags_leave_clean_run_bytes_alone(
            self, small_spec, small_serial_report):
        result = run_fleet(small_spec, workers=2, retries=2,
                           retry_backoff=0.01, shard_deadline=120.0)
        assert result.complete
        assert result.retries_total == 0
        assert result.watchdog_timeouts == 0
        assert result.report.to_json() == small_serial_report.to_json()


class TestWorkerFaults:
    def test_hung_worker_reaped_retried_and_quarantined(self, small_spec):
        """The full supervision story on one poison shard: the watchdog
        reaps the hung worker within its deadline, the retry hangs
        again, the budget exhausts, the siblings (rescheduled when the
        reap broke the pool) still complete."""
        plan = FaultPlan.from_dict(
            {"shards": {"hang": [1], "hang_seconds": 60.0}})
        started = time.monotonic()
        result = run_fleet(small_spec, workers=2, fault_plan=plan,
                           retries=1, retry_backoff=0.01, shard_deadline=3.0)
        wall = time.monotonic() - started
        assert result.watchdog_timeouts == 2  # first attempt + its retry
        assert [q.shard for q in result.quarantined] == [1]
        assert result.quarantined[0].attempts == 2
        assert "WatchdogTimeout" in result.quarantined[0].error
        states = {s.index: s.state for s in result.shard_states}
        assert states[0] == "completed" and states[2] == "completed"
        # Bounded: attempts x deadline plus pool spawn/rebuild slack,
        # nowhere near the 60s the fault wanted to sleep.
        assert wall < 45.0

    def test_slow_worker_heartbeats_past_its_deadline(
            self, small_spec, small_serial_report):
        """A dragging-but-alive worker must never be reaped: the claim
        heartbeats keep it off the watchdog's list even when its total
        runtime exceeds the deadline budget."""
        plan = FaultPlan.from_dict(
            {"shards": {"slow": [0], "slow_factor": 2.0}})
        result = run_fleet(small_spec, workers=2, fault_plan=plan,
                           shard_deadline=20.0)
        assert result.complete
        assert result.watchdog_timeouts == 0
        assert result.report.to_json() == small_serial_report.to_json()


class TestBrokenPoolRecovery:
    def test_unexpected_worker_death_is_absorbed(self, small_spec,
                                                 small_serial_report):
        """SIGKILLing a worker mid-shard (the OOM-killer scenario) breaks
        the pool; the runner must charge an attempt, rebuild, and finish
        with byte-identical output."""
        state = {"killed": False}

        def killer(record):
            if state["killed"] or record["event"] != "shard_running":
                return
            pattern = os.path.join(tempfile.gettempdir(),
                                   "repro-fleet-claims-*",
                                   f"shard-{record['shard']}.claim")
            deadline = time.time() + 10.0
            while time.time() < deadline:
                for path in glob.glob(pattern):
                    pid = read_claim_pid(path)
                    if pid:
                        try:
                            os.kill(pid, signal.SIGKILL)
                        except OSError:  # pragma: no cover - already gone
                            return
                        state["killed"] = True
                        return
                time.sleep(0.02)

        obs = _obs_with_bus()
        obs.events.subscribe(killer)
        result = run_fleet(small_spec, workers=2, retries=2,
                           retry_backoff=0.01, obs=obs)
        assert state["killed"]
        assert result.complete
        assert result.report.to_json() == small_serial_report.to_json()


class TestGracefulShutdown:
    def test_interrupt_during_retry_never_marks_shard_done(
            self, tmp_path, small_spec, small_serial_report):
        """Kill the run between attempt 1 and attempt 2 of a retrying
        shard: the manifest must record it as interrupted — never done —
        and a plain ``--resume`` reproduces the clean report exactly."""
        plan = FaultPlan.from_dict({"shards": {"fail": [1]}})
        records = []

        def bomb(record):
            records.append(record)
            if record["event"] == "shard_retry":
                raise RunInterrupted(signal.SIGTERM)

        obs = _obs_with_bus()
        obs.events.subscribe(bomb)
        with pytest.raises(RunInterrupted) as excinfo:
            run_fleet(small_spec, workers=1, cache_dir=tmp_path,
                      fault_plan=plan, retries=2, retry_backoff=0.01,
                      obs=obs)
        assert excinfo.value.exit_code == 143

        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["shards"]["1"]["state"] == "interrupted"
        assert manifest["shards"]["0"]["state"] == "completed"
        names = [record["event"] for record in records]
        assert names[-2:] == ["run_interrupted", "run_end"]
        assert records[-1]["outcome"] == "interrupted"
        assert records[-2]["signum"] == signal.SIGTERM

        second = run_fleet(small_spec, workers=1, cache_dir=tmp_path,
                           resume=True)
        assert second.resumed and second.complete
        assert second.cache_hits == 1  # only shard 0 was checkpointed
        assert second.report.to_json() == small_serial_report.to_json()

    def test_sigterm_cli_run_exits_143_and_resumes_byte_identically(
            self, tmp_path):
        """The acceptance path end to end: SIGTERM a live ``repro
        fleet`` process, observe exit 143 + a flushed manifest + the
        terminal NDJSON records, then resume to the clean bytes."""
        spec = FleetSpec(seed=5, households=288, target_devices=900,
                         shard_size=16)
        cache = tmp_path / "cache"
        events_path = tmp_path / "events.ndjson"
        script = (
            "import sys\n"
            "from repro.cli import main\n"
            "sys.exit(main(['fleet', '--seed', '5', '--households', '288',\n"
            "               '--target-devices', '900', '--shard-size', '16',\n"
            "               '--workers', '1', '--no-progress',\n"
            "               '--cache-dir', sys.argv[1],\n"
            "               '--events-out', sys.argv[2]]))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        child = subprocess.Popen(
            [sys.executable, "-c", script, str(cache), str(events_path)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        try:
            # Wait for the first checkpointed shard, then pull the plug.
            deadline = time.time() + 60.0
            while time.time() < deadline:
                if child.poll() is not None:
                    break
                if list(cache.glob("shard-*.json")):
                    break
                time.sleep(0.02)
            assert child.poll() is None, "run finished before SIGTERM landed"
            child.send_signal(signal.SIGTERM)
            stderr = child.communicate(timeout=60)[1].decode()
        finally:
            if child.poll() is None:  # pragma: no cover - shutdown hung
                child.kill()
        assert child.returncode == 143
        assert "interrupted (exit 143)" in stderr

        manifest = json.loads((cache / "manifest.json").read_text())
        states = {entry["state"] for entry in manifest["shards"].values()}
        assert "interrupted" in states  # dispatch stopped mid-run
        records = [json.loads(line) for line in
                   events_path.read_text().splitlines()]
        names = [record["event"] for record in records]
        assert "run_interrupted" in names
        assert names[-1] == "run_end"
        assert records[-1]["outcome"] == "interrupted"

        resumed = run_fleet(spec, workers=1, cache_dir=cache, resume=True)
        assert resumed.resumed and resumed.complete
        assert resumed.cache_hits >= 1  # the pre-SIGTERM checkpoints held
        clean = run_fleet(spec, workers=1)
        assert resumed.report.to_json() == clean.report.to_json()
