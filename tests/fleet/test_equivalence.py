"""The fleet's core guarantee: byte-identical to the serial path."""

from repro.core.fingerprint import fingerprint_households
from repro.fleet import FleetSpec, merge_shard_results, run_fleet, run_shard
from repro.inspector.generate import generate_dataset


class TestSerialEquivalence:
    def test_workers_1_matches_serial(self, small_spec, small_serial_report):
        result = run_fleet(small_spec, workers=1)
        assert result.complete
        assert result.report.to_json() == small_serial_report.to_json()

    def test_workers_2_matches_serial(self, small_spec, small_serial_report):
        result = run_fleet(small_spec, workers=2)
        assert result.complete
        assert result.report.to_json() == small_serial_report.to_json()

    def test_shard_size_does_not_change_bytes(self, small_spec, small_serial_report):
        """1 shard and 7 ragged shards merge to the same report."""
        for shard_size in (96, 15):
            spec = FleetSpec(**{**small_spec.to_dict(), "shard_size": shard_size})
            result = run_fleet(spec, workers=1)
            assert result.report.to_json() == small_serial_report.to_json()

    def test_oui_ablation_matches_serial(self, small_spec):
        spec = FleetSpec(**{**small_spec.to_dict(), "validate_oui": False})
        serial = fingerprint_households(
            dataset=generate_dataset(
                seed=spec.seed,
                households=spec.households,
                target_devices=spec.target_devices,
                vendor_count=spec.vendor_count,
                product_count=spec.product_count,
            ),
            validate_oui=False,
        )
        result = run_fleet(spec, workers=1)
        assert result.report.to_json() == serial.to_json()


class TestMerge:
    def test_merge_is_order_insensitive(self, small_spec, small_serial_report):
        spec_dict = small_spec.to_dict()
        partials = [
            run_shard(spec_dict, shard.start, shard.stop)
            for shard in small_spec.shards()
        ]
        report = merge_shard_results(small_spec, list(reversed(partials)))
        assert report.to_json() == small_serial_report.to_json()

    def test_shard_payload_is_json_safe(self, small_spec):
        """Worker results must survive the process boundary as plain data."""
        import json

        shard = small_spec.shards()[0]
        payload = run_shard(small_spec.to_dict(), shard.start, shard.stop)
        assert json.loads(json.dumps(payload)) == json.loads(json.dumps(payload))
        assert payload["start"] == shard.start
        assert payload["stop"] == shard.stop
        assert payload["device_count"] > 0
