"""Fleet profiling: deterministic worker-profile merge + equivalence.

The two contracts the tentpole pins:

* **off = byte-identical** — ``profile_hz=0`` (the default) leaves the
  shard payload, the merged report, and every span exactly as an
  unprofiled build produced them: no ``"profile"`` key, no resource
  attrs, no behavioural difference.
* **on = deterministic merge** — each computed shard's sampled
  :class:`~repro.obs.profile.Profile` is stored in the cache payload
  verbatim and folded into the parent profiler in shard-index order, so
  a warm (cache-replay) run reproduces the cold run's merged profile
  byte-for-byte, at any worker count.
"""

from __future__ import annotations

import json

from repro.fleet import run_fleet, run_shard
from repro.obs import MetricsRegistry, Tracer, use_obs
from repro.obs.context import Observability
from repro.obs.logging import NullLogManager
from repro.obs.profile import RESOURCE_ATTRS, Profile, SamplingProfiler

#: Fast enough that even a sub-second shard collects samples.
TEST_HZ = 431.0


def _profiled_obs() -> Observability:
    obs = Observability(metrics=MetricsRegistry(), tracer=Tracer(),
                        logs=NullLogManager(), enabled=True,
                        profiler=SamplingProfiler(hz=TEST_HZ))
    # The fleet parent's profiler is a merge target only — never
    # started — so its profile is exactly the fold of the workers'.
    return obs


def _walk(node, out):
    out.append(node)
    for child in node.get("children", []):
        _walk(child, out)
    return out


class TestProfilingOff:
    def test_payload_has_no_profile_key_or_resource_attrs(self, small_spec):
        shard = small_spec.shards()[0]
        payload = run_shard(small_spec.to_dict(), shard.start, shard.stop)
        assert "profile" not in payload["obs"]
        for span in _walk({"children": payload["obs"]["spans"]}, [])[1:]:
            for attr in RESOURCE_ATTRS:
                assert attr not in span["attrs"]

    def test_report_identical_with_and_without_worker_profiling(
            self, small_spec, small_serial_report):
        plain = run_fleet(small_spec, workers=1)
        with use_obs(_profiled_obs()):
            profiled = run_fleet(small_spec, workers=1, profile_hz=TEST_HZ)
        assert plain.report.to_json() == small_serial_report.to_json()
        assert profiled.report.to_json() == small_serial_report.to_json()


class TestProfilingOn:
    def test_profiled_payload_carries_profile_and_resource_attrs(
            self, small_spec):
        shard = small_spec.shards()[0]
        payload = run_shard(small_spec.to_dict(), shard.start, shard.stop,
                            profile_hz=TEST_HZ)
        snapshot = payload["obs"]
        assert "profile" in snapshot
        profile = Profile.from_dict(snapshot["profile"])
        assert profile.hz == TEST_HZ
        assert profile.total_samples > 0
        spans = _walk({"children": snapshot["spans"]}, [])[1:]
        named = {span["name"]: span for span in spans}
        assert "cpu_seconds" in named["fleet.worker"]["attrs"]
        assert "gc_collections" in named["worker.generate"]["attrs"]
        # Payload still crosses the process boundary as plain data.
        assert json.loads(json.dumps(payload))["obs"]["profile"] \
            == snapshot["profile"]

    def test_cold_merge_equals_warm_cache_replay(self, small_spec, tmp_path):
        cold_obs = _profiled_obs()
        with use_obs(cold_obs):
            cold = run_fleet(small_spec, workers=2,
                             cache_dir=str(tmp_path), profile_hz=TEST_HZ)
        assert cold.complete and cold.cache_writes == 3

        warm_obs = _profiled_obs()
        with use_obs(warm_obs):
            warm = run_fleet(small_spec, workers=2,
                             cache_dir=str(tmp_path), profile_hz=TEST_HZ)
        assert warm.cache_hits == 3

        cold_profile = cold_obs.profiler.profile.to_dict()
        warm_profile = warm_obs.profiler.profile.to_dict()
        assert cold_profile == warm_profile
        assert Profile.from_dict(warm_profile).total_samples > 0
        # The export layers are equally deterministic.
        assert (cold_obs.profiler.profile.to_collapsed()
                == warm_obs.profiler.profile.to_collapsed())
        assert (cold_obs.profiler.profile.to_speedscope()
                == warm_obs.profiler.profile.to_speedscope())

    def test_merged_profile_attributes_to_worker_spans(self, small_spec):
        obs = _profiled_obs()
        with use_obs(obs):
            result = run_fleet(small_spec, workers=1, profile_hz=TEST_HZ)
        assert result.complete
        spans = set(obs.profiler.profile.samples)
        # Samples landed inside the worker's span tree, not unattributed.
        assert spans & {"fleet.worker", "worker.generate", "worker.analyze"}

    def test_unprofiled_parent_ignores_replayed_profiles(self, small_spec,
                                                         tmp_path):
        with use_obs(_profiled_obs()):
            run_fleet(small_spec, workers=1,
                      cache_dir=str(tmp_path), profile_hz=TEST_HZ)
        plain_obs = Observability(metrics=MetricsRegistry(), tracer=Tracer(),
                                  logs=NullLogManager(), enabled=True)
        with use_obs(plain_obs):
            warm = run_fleet(small_spec, workers=1, cache_dir=str(tmp_path))
        # Cached payloads carry profiles, but an unprofiled parent has
        # no enabled profiler to fold them into — and must not crash.
        assert warm.cache_hits == 3
        assert plain_obs.profiler.snapshot() is None


class TestWorkerHeartbeats:
    def test_run_shard_appends_worker_heartbeats(self, small_spec, tmp_path):
        target = tmp_path / "events.ndjson"
        target.write_text("")  # parent pre-created the stream
        shard = small_spec.shards()[1]
        run_shard(small_spec.to_dict(), shard.start, shard.stop,
                  events_path=str(target), shard_index=1)
        records = [json.loads(line)
                   for line in target.read_text().splitlines()]
        beats = [r for r in records if r["event"] == "heartbeat"]
        assert beats, "worker emitted no heartbeat"
        first = beats[0]
        assert first["kind"] == "worker"
        assert first["shard"] == 1
        assert first["start"] == shard.start
        assert isinstance(first["pid"], int)
        assert first["rss_peak_bytes"] >= 0.0

    def test_fleet_run_interleaves_worker_heartbeats(self, small_spec,
                                                     tmp_path):
        from repro.obs import open_event_stream

        target = tmp_path / "events.ndjson"
        obs = Observability(metrics=MetricsRegistry(), tracer=Tracer(),
                            logs=NullLogManager(), enabled=True,
                            events=open_event_stream(str(target)))
        with use_obs(obs):
            result = run_fleet(small_spec, workers=2)
        obs.events.close()
        assert result.complete
        records = [json.loads(line)
                   for line in target.read_text().splitlines()]
        kinds = {r.get("kind") for r in records if r["event"] == "heartbeat"}
        assert "worker" in kinds
        # Parent lifecycle records survived the workers' appends.
        events = [r["event"] for r in records]
        assert "run_start" in events and "run_end" in events
        assert events.count("shard_done") == 3
