"""Shard planning, content-address keys, and spec validation."""

import pytest

from repro.fleet import FleetSpec, ShardRange, code_version, shard_key
from repro.fleet.spec import default_shard_size, default_workers


class TestShardPlanning:
    def test_shards_cover_population_exactly(self, small_spec):
        shards = small_spec.shards()
        assert [s.index for s in shards] == [0, 1, 2]
        assert shards[0].start == 0
        assert shards[-1].stop == small_spec.households
        for prev, cur in zip(shards, shards[1:]):
            assert prev.stop == cur.start

    def test_ragged_tail_shard(self):
        spec = FleetSpec(seed=1, households=100, shard_size=30)
        shards = spec.shards()
        assert [s.households for s in shards] == [30, 30, 30, 10]

    def test_single_shard_when_size_exceeds_population(self):
        spec = FleetSpec(seed=1, households=10, shard_size=256)
        assert [(s.start, s.stop) for s in spec.shards()] == [(0, 10)]

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            FleetSpec(households=0)
        with pytest.raises(ValueError):
            FleetSpec(shard_size=0)

    def test_spec_round_trips_through_dict(self, small_spec):
        assert FleetSpec.from_dict(small_spec.to_dict()) == small_spec


class TestShardKey:
    def test_key_ignores_shard_partition(self, small_spec):
        """The same household range is the same content under any
        shard_size, so re-partitioning reuses the cache."""
        other = FleetSpec(**{**small_spec.to_dict(), "shard_size": 48})
        shard = ShardRange(index=0, start=0, stop=32)
        renumbered = ShardRange(index=7, start=0, stop=32)
        assert shard_key(small_spec, shard) == shard_key(other, shard)
        assert shard_key(small_spec, shard) == shard_key(small_spec, renumbered)

    def test_key_varies_with_generation_inputs(self, small_spec):
        shard = ShardRange(index=0, start=0, stop=32)
        base = shard_key(small_spec, shard)
        reseeded = FleetSpec(**{**small_spec.to_dict(), "seed": 99})
        ablated = FleetSpec(**{**small_spec.to_dict(), "validate_oui": False})
        assert shard_key(reseeded, shard) != base
        assert shard_key(ablated, shard) != base
        assert shard_key(small_spec, ShardRange(0, 0, 33)) != base

    def test_key_includes_code_version(self, small_spec, monkeypatch):
        shard = ShardRange(index=0, start=0, stop=32)
        base = shard_key(small_spec, shard)
        monkeypatch.setattr("repro.fleet.spec.code_version", lambda: "deadbeef")
        assert shard_key(small_spec, shard) != base

    def test_code_version_is_stable_hex(self):
        version = code_version()
        assert version == code_version()
        int(version, 16)  # hex digest


class TestEnvKnobs:
    def test_shard_size_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_SHARD_SIZE", "17")
        assert default_shard_size() == 17
        assert FleetSpec(seed=1, households=40).shard_size == 17

    def test_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_WORKERS", "6")
        assert default_workers() == 6

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_SHARD_SIZE", "many")
        assert default_shard_size() == 256
        monkeypatch.setenv("REPRO_FLEET_WORKERS", "-3")
        assert default_workers() == 1
