"""Sliding-window semantics: bounds, deterministic eviction, merging."""

from __future__ import annotations

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.monitor import Monitor, Pane, SlidingWindow
from repro.monitor.state import IncrementalCensus
from repro.report.artifacts import canonical_json


def _pane(seq, packets, first, last):
    return Pane(seq=seq, packets=packets, first_timestamp=first,
                last_timestamp=last, states={})


class TestBounds:
    def test_rejects_non_positive_bounds(self):
        with pytest.raises(ValueError, match="window_packets"):
            SlidingWindow(window_packets=0)
        with pytest.raises(ValueError, match="window_seconds"):
            SlidingWindow(window_seconds=-1.0)

    def test_unbounded_window_never_evicts(self):
        window = SlidingWindow()
        for seq in range(50):
            assert window.push(_pane(seq, 100, seq, seq + 1)) == []
        assert len(window) == 50 and window.packets == 5000
        assert window.evicted_panes == 0

    def test_packet_bound_evicts_oldest_whole_panes(self):
        window = SlidingWindow(window_packets=250)
        assert window.push(_pane(1, 100, 0, 1)) == []
        assert window.push(_pane(2, 100, 1, 2)) == []
        # Third push reaches 300 > 250: pane 1 is evicted, whole.
        assert [p.seq for p in window.push(_pane(3, 100, 2, 3))] == [1]
        assert [p.seq for p in window.panes] == [2, 3]
        assert window.packets == 200
        assert window.evicted_panes == 1 and window.evicted_packets == 100

    def test_single_oversized_pane_survives(self):
        window = SlidingWindow(window_packets=10)
        evicted = window.push(_pane(1, 500, 0, 1))
        assert evicted == [] and len(window) == 1
        evicted = window.push(_pane(2, 500, 1, 2))
        assert [p.seq for p in evicted] == [1]
        assert [p.seq for p in window.panes] == [2]

    def test_time_bound_evicts_stale_panes(self):
        window = SlidingWindow(window_seconds=10.0)
        window.push(_pane(1, 10, 0.0, 1.0))
        window.push(_pane(2, 10, 5.0, 6.0))
        evicted = window.push(_pane(3, 10, 14.0, 15.0))
        # Horizon is 15 - 10 = 5; pane 1 (last_timestamp 1.0) expires.
        assert [p.seq for p in evicted] == [1]
        assert [p.seq for p in window.panes] == [2, 3]

    def test_both_bounds_compose(self):
        window = SlidingWindow(window_packets=25, window_seconds=5.0)
        window.push(_pane(1, 10, 0.0, 1.0))
        window.push(_pane(2, 10, 1.0, 2.0))
        evicted = window.push(_pane(3, 10, 9.0, 10.0))
        # Packet bound drops pane 1 (30 > 25); time bound drops pane 2
        # (2.0 < 10.0 - 5.0).
        assert [p.seq for p in evicted] == [1, 2]

    def test_merged_empty_window(self):
        assert SlidingWindow().merged() == {}
        monitor = Monitor()
        snapshot = monitor.snapshot()
        assert snapshot["artifacts"]["census"]["total_devices"] == 0
        assert snapshot["window"]["packets"] == 0


class TestEvictionDeterminism:
    def test_identical_runs_are_byte_identical(self, lab_records):
        def run():
            monitor = Monitor(window_packets=700)
            for start in range(0, len(lab_records), 256):
                monitor.absorb_chunk(lab_records[start:start + 256])
            return (canonical_json(monitor.snapshot()),
                    monitor.window.evicted_panes,
                    monitor.window.evicted_packets)

        first, second = run(), run()
        assert first == second

    def test_windowed_census_equals_batch_over_surviving_rows(
            self, lab_records):
        """The window's merged state IS the batch state of its rows."""
        chunk = 256
        monitor = Monitor(window_packets=900)
        for start in range(0, len(lab_records), chunk):
            monitor.absorb_chunk(lab_records[start:start + chunk])
        # Pane seq is 1-based and chunks are fixed-size, so the oldest
        # live pane pins the exact record slice the window covers.
        first_seq = monitor.window.panes[0].seq
        survivors = lab_records[(first_seq - 1) * chunk:]
        assert sum(p.packets for p in monitor.window.panes) == len(survivors)

        from repro.net.columnar import PacketTable
        from repro.net.decode import DecodeErrorLog
        from repro.net.index import CaptureIndex

        table = PacketTable()
        table.extend_records(survivors, DecodeErrorLog())
        index = CaptureIndex(table)
        batch = IncrementalCensus(None)
        batch.update(index)
        merged = monitor.window.merged()["census"]
        from repro.report.artifacts import census_artifact

        assert canonical_json(census_artifact(merged.finalize())) == \
            canonical_json(census_artifact(batch.finalize()))


class TestFaultPlanDeterminism:
    """Corrupted/truncated frames must not break eviction determinism."""

    @pytest.fixture(scope="class")
    def faulty_records(self):
        from repro.devices.behaviors import build_testbed

        plan = FaultPlan.from_dict({
            "name": "monitor-chaos",
            "links": [{
                "src": "*", "dst": "*",
                "loss": 0.05, "truncate": 0.05,
                "corrupt": 0.05, "corrupt_bits": 16,
            }],
        })
        testbed = build_testbed(seed=13)
        FaultInjector(plan, seed=13).install(testbed.lan)
        testbed.run(90.0)
        return list(testbed.lan.capture.records)

    def test_two_runs_identical_under_faults(self, faulty_records):
        def run():
            monitor = Monitor(window_packets=500)
            for start in range(0, len(faulty_records), 200):
                monitor.absorb_chunk(faulty_records[start:start + 200])
            return (canonical_json(monitor.snapshot()),
                    monitor.window.evicted_panes,
                    dict(monitor.errors.counts))

        first, second = run(), run()
        assert first == second

    def test_quarantined_frames_are_counted_not_fatal(self, faulty_records):
        monitor = Monitor()
        for start in range(0, len(faulty_records), 500):
            monitor.absorb_chunk(faulty_records[start:start + 500])
        snapshot = monitor.snapshot()
        # Decode is total: corrupted frames are counted per reason but
        # still flow through as rows, so nothing goes missing.
        quarantined = sum(snapshot["stream"]["quarantined"].values())
        assert quarantined > 0
        assert monitor.packets_seen == len(faulty_records)
