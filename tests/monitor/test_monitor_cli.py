"""``repro monitor`` end-to-end: sources, snapshots, telemetry, exits."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.cli import main
from repro.net.pcap import PcapWriter, write_pcap
from repro.report.artifacts import canonical_json


@pytest.fixture(scope="module")
def lab_pcap(tmp_path_factory, lab_records):
    path = tmp_path_factory.mktemp("monitor") / "lab.pcap"
    write_pcap(path, lab_records)
    return path


class TestPcapMode:
    def test_full_window_snapshot_matches_batch(self, lab_pcap, lab_index,
                                                tmp_path, capsys):
        out = tmp_path / "final.json"
        code = main(["monitor", str(lab_pcap), "--json", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "monitor:" in printed and "census:" in printed

        from repro.core.protocol_census import census_from_capture
        from repro.report.artifacts import census_artifact

        identity = {mac: mac for mac in lab_index.by_src_mac}
        batch = canonical_json(
            census_artifact(census_from_capture(lab_index, identity)))
        snapshot = json.loads(out.read_text())
        assert canonical_json(snapshot["artifacts"]["census"]) == batch
        assert snapshot["schema"] == 1
        assert snapshot["window"]["evicted_panes"] == 0

    def test_windowed_run_with_periodic_snapshots(self, lab_pcap, tmp_path):
        snaps = tmp_path / "snaps"
        code = main(["monitor", str(lab_pcap),
                     "--chunk-records", "256",
                     "--window-packets", "800",
                     "--snapshot-every", "1000",
                     "--snapshot-dir", str(snaps)])
        assert code == 0
        written = sorted(p.name for p in snaps.iterdir())
        assert "snapshot-final.json" in written
        numbered = [name for name in written if name != "snapshot-final.json"]
        assert numbered == [f"snapshot-{i + 1:06d}.json"
                            for i in range(len(numbered))]
        assert numbered, "expected at least one periodic snapshot"
        final = json.loads((snaps / "snapshot-final.json").read_text())
        assert final["window"]["evicted_panes"] > 0
        assert final["window"]["packets"] <= 800 + 256

    def test_max_packets_stops_early(self, lab_pcap, tmp_path):
        out = tmp_path / "early.json"
        code = main(["monitor", str(lab_pcap), "--chunk-records", "128",
                     "--max-packets", "300", "--json", str(out)])
        assert code == 0
        snapshot = json.loads(out.read_text())
        seen = snapshot["stream"]["packets_seen"]
        assert 300 <= seen < 300 + 128

    def test_events_and_metrics(self, lab_pcap, tmp_path):
        events = tmp_path / "events.ndjson"
        metrics = tmp_path / "metrics.json"
        code = main(["monitor", str(lab_pcap), "--chunk-records", "512",
                     "--window-packets", "600",
                     "--json", str(tmp_path / "s.json"),
                     "--events-out", str(events),
                     "--metrics-out", str(metrics)])
        assert code == 0
        lines = [json.loads(line)
                 for line in events.read_text().splitlines() if line]
        kinds = {line["event"] for line in lines}
        assert "window_advanced" in kinds and "snapshot_written" in kinds
        advanced = [line for line in lines
                    if line["event"] == "window_advanced"]
        assert advanced[0]["pane"] == 1
        assert any(line["evicted_panes"] for line in advanced)
        snapshot = json.loads(metrics.read_text())
        names = set()
        for metric in (snapshot.get("metrics") or snapshot):
            names.add(metric["name"] if isinstance(metric, dict) else metric)
        for expected in ("monitor_window_packets", "monitor_evictions_total",
                         "monitor_rss_bytes", "monitor_packets_total"):
            assert any(expected in str(name) for name in names), expected

    def test_empty_pcap_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "header_only.pcap"
        PcapWriter(path).close()
        code = main(["monitor", str(path),
                     "--json", str(tmp_path / "empty.json")])
        assert code == 0
        snapshot = json.loads((tmp_path / "empty.json").read_text())
        assert snapshot["stream"]["packets_seen"] == 0
        assert snapshot["artifacts"]["census"]["total_devices"] == 0


class TestSimulateMode:
    def test_simulate_is_deterministic(self, tmp_path):
        outs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            code = main(["monitor", "--simulate", "--seed", "11",
                         "--duration", "40", "--chunk-records", "256",
                         "--json", str(out)])
            assert code == 0
            outs.append(out.read_text())
        assert outs[0] == outs[1]
        snapshot = json.loads(outs[0])
        assert snapshot["stream"]["packets_seen"] > 0


class TestFollowMode:
    def test_follow_tails_a_growing_pcap(self, lab_records, tmp_path):
        path = tmp_path / "growing.pcap"
        subset = lab_records[:900]

        def writer():
            with PcapWriter(path) as handle:
                for i, (timestamp, data) in enumerate(subset):
                    handle.write(timestamp, data)
                    if i % 300 == 299:
                        time.sleep(0.1)

        thread = threading.Thread(target=writer)
        thread.start()
        out = tmp_path / "follow.json"
        code = main(["monitor", str(path), "--follow",
                     "--poll-interval", "0.02", "--idle-timeout", "2",
                     "--chunk-records", "128", "--json", str(out)])
        thread.join()
        assert code == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["stream"]["packets_seen"] == len(subset)


class TestConfigErrors:
    def test_requires_exactly_one_source(self, tmp_path, capsys):
        assert main(["monitor"]) == 2
        assert "PCAP path or --simulate" in capsys.readouterr().err
        assert main(["monitor", str(tmp_path / "x.pcap"), "--simulate"]) == 2

    def test_follow_requires_pcap(self, capsys):
        assert main(["monitor", "--simulate", "--follow"]) == 2
        assert "--follow requires" in capsys.readouterr().err

    def test_snapshot_every_requires_dir(self, tmp_path, capsys):
        code = main(["monitor", str(tmp_path / "x.pcap"),
                     "--snapshot-every", "100"])
        assert code == 2
        assert "--snapshot-dir" in capsys.readouterr().err

    def test_non_positive_values_rejected(self, tmp_path, capsys):
        for flags in (["--window-packets", "0"], ["--chunk-records", "-2"],
                      ["--window-seconds", "0"], ["--duration", "0"]):
            code = main(["monitor", str(tmp_path / "x.pcap"), *flags])
            assert code == 2, flags

    def test_bad_device_map_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        code = main(["monitor", str(tmp_path / "x.pcap"),
                     "--device-map", str(bad)])
        assert code == 2
        assert "--device-map" in capsys.readouterr().err

    def test_missing_pcap_is_runtime_error(self, tmp_path, capsys):
        code = main(["monitor", str(tmp_path / "absent.pcap")])
        assert code == 1
        assert "repro monitor: error" in capsys.readouterr().err

    def test_unwritable_json_dir_rejected(self, tmp_path, capsys):
        code = main(["monitor", str(tmp_path / "x.pcap"),
                     "--json", str(tmp_path / "no" / "such" / "dir.json")])
        assert code == 2
        assert "--json" in capsys.readouterr().err
