"""Shared monitor fixtures: one lab capture, built once per session."""

from __future__ import annotations

import pytest

from repro.devices.behaviors import build_testbed


@pytest.fixture(scope="session")
def lab_records():
    """Raw ``(timestamp, frame_bytes)`` records of a 2-minute lab run."""
    testbed = build_testbed(seed=7)
    testbed.run(120.0)
    return list(testbed.lan.capture.records)


@pytest.fixture(scope="session")
def lab_index(lab_records):
    """The same capture as a built :class:`CaptureIndex`."""
    from repro.net.columnar import PacketTable
    from repro.net.decode import DecodeErrorLog
    from repro.net.index import CaptureIndex

    table = PacketTable()
    table.extend_records(lab_records, DecodeErrorLog())
    return CaptureIndex(table)
