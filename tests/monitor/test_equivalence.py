"""The monitor's core contract: incremental ≡ batch, byte for byte.

For each of the four incremental analyses, over both device modes
(identity and explicit map):

* a full-window monitor's ``finalize()`` must serialize byte-identically
  to the batch analysis through :mod:`repro.report.artifacts`;
* splitting the capture at *random* points and folding the pieces with
  ``merge(update(a), update(b)) ≡ update(a + b)`` must not change a
  byte;
* ``to_dict()`` / ``from_dict()`` must round-trip without changing the
  finalized artifact.
"""

from __future__ import annotations

import random

import pytest

from repro.core.device_graph import build_device_graph
from repro.core.exposure import analyze_exposure
from repro.core.periodicity import analyze_periodicity
from repro.core.protocol_census import census_from_capture
from repro.monitor import Monitor
from repro.monitor.state import (
    IncrementalCensus,
    IncrementalDeviceGraph,
    IncrementalExposure,
    IncrementalPeriodicity,
    state_from_dict,
)
from repro.report.artifacts import (
    canonical_json,
    census_artifact,
    device_graph_artifact,
    exposure_artifact,
    periodicity_artifact,
)

STATE_FACTORIES = {
    "census": IncrementalCensus,
    "device_graph": IncrementalDeviceGraph,
    "exposure": IncrementalExposure,
    "periodicity": IncrementalPeriodicity,
}


def _identity_map(index):
    return {mac: mac for mac in index.by_src_mac}


def _name_map(index):
    return {mac: f"dev-{i:02d}"
            for i, mac in enumerate(sorted(index.by_src_mac))}


def _batch_artifacts(index, device_macs):
    return {
        "census": canonical_json(census_artifact(
            census_from_capture(index, device_macs))),
        "device_graph": canonical_json(device_graph_artifact(
            build_device_graph(index, device_macs, {}))),
        "exposure": canonical_json(exposure_artifact(
            analyze_exposure(index, device_macs))),
        "periodicity": canonical_json(periodicity_artifact(
            analyze_periodicity(index, device_macs))),
    }


def _monitor_artifacts(records, device_macs, chunk):
    monitor = Monitor(device_macs=device_macs)
    for start in range(0, len(records), chunk):
        monitor.absorb_chunk(records[start:start + chunk])
    snapshot = monitor.snapshot()
    return {name: canonical_json(artifact)
            for name, artifact in snapshot["artifacts"].items()}


class TestFullWindowByteIdentity:
    @pytest.mark.parametrize("chunk", [10_000, 64, 257])
    def test_identity_mode(self, lab_records, lab_index, chunk):
        batch = _batch_artifacts(lab_index, _identity_map(lab_index))
        got = _monitor_artifacts(lab_records, None, chunk)
        for name, expected in batch.items():
            assert got[name] == expected, f"{name} diverged at chunk={chunk}"

    @pytest.mark.parametrize("chunk", [10_000, 313])
    def test_mapped_mode(self, lab_records, lab_index, chunk):
        names = _name_map(lab_index)
        batch = _batch_artifacts(lab_index, names)
        got = _monitor_artifacts(lab_records, names, chunk)
        for name, expected in batch.items():
            assert got[name] == expected, f"{name} diverged at chunk={chunk}"


class TestRandomSplitMerge:
    """Property-style: random split points must never change a byte."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_merge_of_random_splits_equals_single_update(
            self, lab_records, lab_index, seed):
        rng = random.Random(seed)
        n = len(lab_index.table)
        cuts = sorted(rng.sample(range(1, n), rng.randint(1, 6)))
        bounds = list(zip([0] + cuts, cuts + [n]))
        device_macs = None if seed % 2 == 0 else _name_map(lab_index)
        for name, factory in STATE_FACTORIES.items():
            whole = factory(device_macs)
            whole.update(lab_index)
            parts = []
            for start, stop in bounds:
                part = factory(device_macs)
                part.update(lab_index, row_ids=range(start, stop))
                parts.append(part)
            merged = factory.merge(parts)
            assert _serialize(name, merged) == _serialize(name, whole), (
                f"{name}: merge over splits {cuts} diverged")

    @pytest.mark.parametrize("seed", [11, 12])
    def test_pairwise_merge_is_associative_with_absorb(
            self, lab_records, lab_index, seed):
        rng = random.Random(seed)
        n = len(lab_index.table)
        cut = rng.randint(1, n - 1)
        for name, factory in STATE_FACTORIES.items():
            a = factory(None)
            a.update(lab_index, row_ids=range(0, cut))
            b = factory(None)
            b.update(lab_index, row_ids=range(cut, n))
            a.absorb(b)
            whole = factory(None)
            whole.update(lab_index)
            assert _serialize(name, a) == _serialize(name, whole)


class TestSerializationRoundTrip:
    def test_to_dict_from_dict_preserves_finalized_artifact(self, lab_index):
        for name, factory in STATE_FACTORIES.items():
            for device_macs in (None, _name_map(lab_index)):
                state = factory(device_macs)
                state.update(lab_index)
                revived = state_from_dict(state.to_dict())
                assert type(revived) is type(state)
                assert revived.config() == state.config()
                assert _serialize(name, revived) == _serialize(name, state)

    def test_round_tripped_states_still_merge(self, lab_index):
        n = len(lab_index.table)
        for name, factory in STATE_FACTORIES.items():
            a = factory(None)
            a.update(lab_index, row_ids=range(0, n // 2))
            b = factory(None)
            b.update(lab_index, row_ids=range(n // 2, n))
            merged = factory.merge(
                [state_from_dict(a.to_dict()), state_from_dict(b.to_dict())])
            whole = factory(None)
            whole.update(lab_index)
            assert _serialize(name, merged) == _serialize(name, whole)

    def test_merge_rejects_mismatched_configs(self, lab_index):
        a = IncrementalCensus(None)
        b = IncrementalCensus({"02:00:00:00:00:01": "thing"})
        with pytest.raises(ValueError, match="configurations"):
            a.absorb(b)
        with pytest.raises(ValueError, match="merge"):
            IncrementalCensus.merge([])

    def test_state_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown incremental state"):
            state_from_dict({"kind": "nope"})


_SERIALIZERS = {
    "census": census_artifact,
    "device_graph": device_graph_artifact,
    "exposure": exposure_artifact,
    "periodicity": periodicity_artifact,
}


def _serialize(name, state):
    return canonical_json(_SERIALIZERS[name](state.finalize()))
