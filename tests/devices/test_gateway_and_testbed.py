"""Tests for the gateway's DHCP server and Testbed helpers."""

import pytest

from repro.devices.behaviors import GatewayNode, build_testbed
from repro.protocols.dhcp import DhcpMessage, DhcpMessageType
from repro.simnet.lan import Lan
from repro.simnet.node import Node
from repro.simnet.simulator import Simulator


class TestGatewayDhcp:
    @pytest.fixture
    def gateway_lan(self):
        simulator = Simulator()
        lan = Lan(simulator)
        gateway = GatewayNode()
        lan.attach(gateway, ip=lan.gateway_ip)
        client = lan.attach(Node("client", "02:aa:00:00:00:31", "192.168.10.31"))
        inbox = []
        client.add_raw_hook(lambda _n, p: inbox.append(p))
        return lan, gateway, client, inbox

    def test_request_acked(self, gateway_lan):
        lan, gateway, client, inbox = gateway_lan
        request = DhcpMessage.request(
            client.mac, 0x42, requested_ip=client.ip, server_ip=gateway.ip,
            hostname="client-host",
        )
        client.send_udp("255.255.255.255", 67, request.encode(), src_port=68)
        acks = [p for p in inbox if p.udp and p.udp.src_port == 67]
        assert acks
        reply = DhcpMessage.decode(acks[0].udp.payload)
        assert reply.message_type is DhcpMessageType.ACK
        assert reply.your_ip == client.ip
        assert reply.transaction_id == 0x42

    def test_lease_recorded(self, gateway_lan):
        lan, gateway, client, inbox = gateway_lan
        request = DhcpMessage.request(client.mac, 1, client.ip, gateway.ip)
        client.send_udp("255.255.255.255", 67, request.encode(), src_port=68)
        assert gateway.dhcp_leases[str(client.mac)] == client.ip

    def test_garbage_ignored(self, gateway_lan):
        lan, gateway, client, inbox = gateway_lan
        client.send_udp("255.255.255.255", 67, b"\x00" * 60, src_port=68)
        assert not any(p.udp and p.udp.src_port == 67 for p in inbox)

    def test_server_replies_not_answered(self, gateway_lan):
        # A BOOTREPLY arriving at the server port must not loop.
        lan, gateway, client, inbox = gateway_lan
        reply = DhcpMessage.reply(
            DhcpMessage.request(client.mac, 1, client.ip, gateway.ip),
            DhcpMessageType.ACK, client.ip, gateway.ip, gateway.ip,
        )
        client.send_udp("255.255.255.255", 67, reply.encode(), src_port=68)
        assert not any(p.udp and p.udp.src_port == 67 for p in inbox)


class TestTestbedHelpers:
    @pytest.fixture(scope="class")
    def testbed(self):
        return build_testbed(seed=29)

    def test_device_lookup(self, testbed):
        assert testbed.device("philips-hue-hub-1") is not None
        assert testbed.device("no-such-device") is None

    def test_devices_of_vendor(self, testbed):
        amazon = testbed.devices_of_vendor("Amazon")
        assert len(amazon) == 19  # 17 voice + Fire TV + smart plug
        assert all(node.vendor == "Amazon" for node in amazon)

    def test_run_advances_clock(self, testbed):
        before = testbed.simulator.now
        testbed.run(5.0)
        assert testbed.simulator.now == before + 5.0

    def test_every_device_attached_with_unique_identity(self, testbed):
        macs = {str(node.mac) for node in testbed.devices}
        ips = {node.ip for node in testbed.devices}
        assert len(macs) == 93 and len(ips) == 93

    def test_gateway_present(self, testbed):
        assert testbed.gateway.ip == testbed.lan.gateway_ip
        assert testbed.lan.node_by_name("gateway") is testbed.gateway

    def test_wire_clusters_optional(self):
        bare = build_testbed(seed=29, wire_clusters=False)
        bare.run(120.0)
        tcp = [p for p in bare.lan.capture.decoded() if p.tcp and p.tcp.payload]
        # Without cluster wiring there are no TLS/HTTP conversations.
        assert not any(p.tcp.payload[:1] == b"\x16" for p in tcp)
