"""Tests for the Table 3 catalog: counts, structure, paper marginals."""

from collections import Counter

import pytest

from repro.devices.catalog import (
    TESTBED_CATEGORY_COUNTS,
    build_catalog,
    catalog_summary,
)
from repro.devices.profiles import HostnameScheme


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


class TestTable3Structure:
    def test_93_devices(self, catalog):
        assert len(catalog) == 93

    def test_78_unique_models(self, catalog):
        assert len({(profile.vendor, profile.model) for profile in catalog}) == 78

    def test_category_counts(self, catalog):
        counts = Counter(profile.category for profile in catalog)
        assert dict(counts) == TESTBED_CATEGORY_COUNTS

    def test_voice_assistant_vendors(self, catalog):
        voice = [profile for profile in catalog if profile.category == "Voice Assistant"]
        vendors = Counter(profile.vendor for profile in voice)
        # Table 3: Amazon (17), Apple (3), Meta (1), Google (7).
        assert vendors == {"Amazon": 17, "Apple": 3, "Meta": 1, "Google": 7}

    def test_surveillance_has_ring_four(self, catalog):
        ring = [p for p in catalog if p.category == "Surveillance" and p.vendor == "Ring"]
        assert len(ring) == 4

    def test_unique_names(self, catalog):
        names = [profile.name for profile in catalog]
        assert len(names) == len(set(names))

    def test_summary_totals(self, catalog):
        summary = catalog_summary(catalog)
        assert sum(sum(v.values()) for v in summary.values()) == 93


class TestPaperMarginals:
    """§4/§5 prevalence targets; generous bands, exact values are
    reported (vs the paper) by the benchmarks."""

    def test_mdns_near_44_percent(self, catalog):
        assert 38 <= sum(1 for p in catalog if p.mdns) <= 45

    def test_ssdp_near_32_percent(self, catalog):
        assert 28 <= sum(1 for p in catalog if p.ssdp) <= 35

    def test_ssdp_notify_seven(self, catalog):
        assert sum(1 for p in catalog if p.ssdp and p.ssdp.notify) == 7

    def test_ssdp_responders_nine(self, catalog):
        assert sum(1 for p in catalog if p.ssdp and p.ssdp.respond) == 9

    def test_ipv6_near_59_percent(self, catalog):
        assert 50 <= sum(1 for p in catalog if p.supports_ipv6) <= 61

    def test_udp_scan_responders_twenty(self, catalog):
        assert sum(1 for p in catalog if p.responds_to_udp_scan) == 20

    def test_tuya_devices_broadcast(self, catalog):
        tuya = [p for p in catalog if p.tuya_broadcast]
        assert len(tuya) == 5
        # Jinvoo bulb is the plaintext one (§5.1).
        plaintext = [p for p in tuya if not p.tuya_encrypted]
        assert [p.model for p in plaintext] == ["Jinvoo Bulb"]

    def test_tplink_servers(self, catalog):
        assert sum(1 for p in catalog if p.tplink_role == "server") == 2

    def test_tplink_clients_are_amazon_google(self, catalog):
        clients = {p.vendor for p in catalog if p.tplink_role == "client"}
        assert clients == {"Amazon", "Google"}

    def test_echo_arp_sweep_daily(self, catalog):
        echos = [p for p in catalog if p.vendor == "Amazon" and p.category == "Voice Assistant"]
        assert all(p.arp_scan.broadcast_sweep_interval == 86400.0 for p in echos)
        assert all(abs(p.arp_scan.unicast_probe_fraction - 0.83) < 1e-9 for p in echos)

    def test_google_ssdp_every_20s(self, catalog):
        google_speakers = [p for p in catalog if p.vendor == "Google" and p.ssdp]
        assert all(p.ssdp.msearch_interval == 20.0 for p in google_speakers)

    def test_echo_ssdp_2_to_3_hours(self, catalog):
        echos = [p for p in catalog if p.vendor == "Amazon" and p.category == "Voice Assistant"]
        assert all(7200.0 <= p.ssdp.msearch_interval <= 10800.0 for p in echos)

    def test_echo_generic_ssdp_targets(self, catalog):
        echo = next(p for p in catalog if p.name == "amazon-echo-spot-1")
        assert set(echo.ssdp.msearch_targets) == {"ssdp:all", "upnp:rootdevice"}

    def test_google_specific_ssdp_targets(self, catalog):
        hub = next(p for p in catalog if p.name == "google-nest-hub-5")
        assert "ssdp:all" not in hub.ssdp.msearch_targets

    def test_open_port_devices_near_61(self, catalog):
        assert 55 <= sum(1 for p in catalog if p.open_services) <= 70


class TestDocumentedQuirks:
    def test_fire_tv_bad_location(self, catalog):
        fire_tv = next(p for p in catalog if p.name == "amazon-fire-tv-1")
        assert fire_tv.ssdp.bad_location_prefix

    def test_lg_firmware_rotation(self, catalog):
        lg = next(p for p in catalog if p.name == "lg-tv-1")
        assert lg.ssdp.firmware_rotation == [
            "WebOS TV/Version 0.9", "WebOS/1.5", "WebOS/4.1.0",
        ]

    def test_roku_igd(self, catalog):
        roku = next(p for p in catalog if p.name == "roku-tv-1")
        assert roku.ssdp.search_igd

    def test_homepod_mini_sheerdns(self, catalog):
        homepod = next(p for p in catalog if p.name == "apple-homepod-mini-1")
        dns = next(s for s in homepod.open_services if s.protocol == "dns")
        assert dns.software == "SheerDNS" and dns.version == "1.0.0"
        assert any(v.cve == "NESSUS-11535" for v in homepod.vulnerabilities)

    def test_wemo_dns_cache_snooping(self, catalog):
        wemo = next(p for p in catalog if p.name == "wemo-plug-1")
        assert any(v.cve == "NESSUS-12217" for v in wemo.vulnerabilities)

    def test_microseven_jquery_and_onvif(self, catalog):
        cam = next(p for p in catalog if p.name == "microseven-camera-1")
        cves = {v.cve for v in cam.vulnerabilities}
        assert {"CVE-2020-11022", "CVE-2020-11023", "ONVIF-UNAUTH-SNAPSHOT"} <= cves

    def test_lefun_backup_exposure(self, catalog):
        lefun = next(p for p in catalog if p.name == "lefun-camera-1")
        assert any(v.cve == "HTTP-BACKUP-EXPOSURE" for v in lefun.vulnerabilities)

    def test_google_short_tls_keys_on_8009(self, catalog):
        hub = next(p for p in catalog if p.name == "google-nest-hub-5")
        assert hub.tls.port == 8009
        assert 64 <= hub.tls.key_bits <= 122

    def test_amazon_tls_three_months_ip_cn(self, catalog):
        echo = next(p for p in catalog if p.name == "amazon-echo-spot-1")
        assert echo.tls.cert_validity_days == 90.0
        assert echo.tls.cn_scheme == "local_ip"
        assert echo.tls.mutual_auth

    def test_apple_tls_13(self, catalog):
        for profile in catalog:
            if profile.vendor == "Apple":
                assert profile.tls.version == "1.3"

    def test_hue_cert_28_years(self, catalog):
        hue = next(p for p in catalog if p.name == "philips-hue-hub-1")
        assert 20 <= hue.tls.cert_validity_days / 365.25 <= 28.5

    def test_echo_open_ports(self, catalog):
        echo = next(p for p in catalog if p.name == "amazon-echo-spot-1")
        ports = {s.port for s in echo.open_services if s.transport == "tcp"}
        assert {55442, 55443, 4070} <= ports

    def test_echo_lifx_broadcast(self, catalog):
        echo = next(p for p in catalog if p.name == "amazon-echo-spot-1")
        assert echo.unknown_broadcast_port == 56700
        assert echo.unknown_broadcast_interval == 7200.0

    def test_google_stun_like_range(self, catalog):
        hub = next(p for p in catalog if p.name == "google-nest-hub-5")
        assert hub.stun_like_udp_ports == list(range(10000, 10011))

    def test_hostname_schemes(self, catalog):
        by_name = {p.name: p for p in catalog}
        assert by_name["ring-chime-1"].dhcp.hostname_scheme is HostnameScheme.NAME_AND_MAC
        assert by_name["ring-camera-1"].dhcp.hostname_scheme is HostnameScheme.MODEL
        assert by_name["tuya-automation-1"].dhcp.hostname_scheme is HostnameScheme.VENDOR_AND_PARTIAL_MAC
        assert by_name["ge-microwave-1"].dhcp.hostname_scheme is HostnameScheme.RANDOMIZED
        assert by_name["tivo-stream-1"].dhcp.hostname_scheme is HostnameScheme.RANDOMIZED
        assert by_name["apple-homepod-mini-1"].dhcp.hostname_scheme is HostnameScheme.USER_DISPLAY_NAME

    def test_samsung_fridge_iotivity(self, catalog):
        fridge = next(p for p in catalog if p.name == "samsung-fridge-1")
        assert fridge.coap_role == "iotivity-client"

    def test_homepod_coap_opaque(self, catalog):
        homepod = next(p for p in catalog if p.name == "apple-homepod-mini-1")
        assert homepod.coap_role == "opaque"

    def test_exposed_identifier_types(self, catalog):
        tplink = next(p for p in catalog if p.name == "tplink-1")
        exposed = tplink.exposed_identifier_types()
        assert "Geolocation" in exposed and "OEM id" in exposed
        jinvoo = next(p for p in catalog if p.model == "Jinvoo Bulb")
        assert {"GW id", "Prod. Key"} <= set(jinvoo.exposed_identifier_types())
