"""Tests for the behaviour engine: the traffic profiles actually emit."""

import pytest

from repro.devices.behaviors import DeviceNode, build_testbed
from repro.protocols.dhcp import DhcpMessage
from repro.protocols.dns import DnsMessage
from repro.protocols.ssdp import SsdpMessage, SsdpMethod
from repro.protocols.tplink_shp import TplinkShpMessage
from repro.protocols.tuyalp import TuyaLpMessage


class TestBootTraffic:
    def test_dhcp_carries_hostname_and_client_version(self, mini_capture):
        testbed, packets = mini_capture
        dhcp_requests = []
        for packet in packets:
            if packet.udp and packet.udp.dst_port == 67:
                try:
                    dhcp_requests.append(DhcpMessage.decode(packet.udp.payload))
                except ValueError:
                    pass
        assert dhcp_requests
        hostnames = {m.hostname for m in dhcp_requests if m.hostname}
        assert any("tp-link" in h.lower() or "tplink" in h.lower() for h in hostnames)
        versions = {m.vendor_class for m in dhcp_requests if m.vendor_class}
        assert any(v.startswith("udhcp") for v in versions)

    def test_dhcp_server_acks(self, mini_capture):
        testbed, packets = mini_capture
        acks = [p for p in packets if p.udp and p.udp.src_port == 67]
        assert acks  # the gateway answered

    def test_eapol_on_boot(self, mini_capture):
        testbed, packets = mini_capture
        eapol_senders = {str(p.frame.src) for p in packets if p.eapol}
        wireless = [n for n in testbed.devices if n.profile.uses_eapol]
        assert len(eapol_senders) >= len(wireless) - 1

    def test_gratuitous_arp_on_boot(self, mini_capture):
        testbed, packets = mini_capture
        gratuitous = [p for p in packets if p.arp and p.arp.is_gratuitous]
        assert gratuitous

    def test_igmp_joins_for_discovery_groups(self, mini_capture):
        testbed, packets = mini_capture
        groups = {p.igmp.group for p in packets if p.igmp}
        assert "224.0.0.251" in groups  # mDNS
        assert "239.255.255.250" in groups  # SSDP


class TestDiscoveryTraffic:
    def test_mdns_queries_and_responses(self, mini_capture):
        testbed, packets = mini_capture
        queries = responses = 0
        for packet in packets:
            if packet.udp and packet.udp.dst_port == 5353:
                try:
                    message = DnsMessage.decode(packet.udp.payload)
                except ValueError:
                    continue
                if message.is_response:
                    responses += 1
                else:
                    queries += 1
        assert queries > 0 and responses > 0

    def test_hue_mdns_instance_embeds_mac(self, mini_capture):
        testbed, packets = mini_capture
        hue = testbed.device("philips-hue-hub-1")
        suffix = hue.mac.nic_suffix.replace(":", "").upper()
        adverts = hue.mdns_advertisements()
        assert any(suffix in advert.instance_name for advert in adverts)

    def test_ssdp_msearch_sent(self, mini_capture):
        testbed, packets = mini_capture
        msearch = 0
        for packet in packets:
            if packet.udp and packet.udp.dst_port == 1900:
                try:
                    if SsdpMessage.decode(packet.udp.payload).method is SsdpMethod.MSEARCH:
                        msearch += 1
                except ValueError:
                    pass
        assert msearch > 0

    def test_ssdp_responses_unicast(self, mini_capture):
        testbed, packets = mini_capture
        responses = [
            p for p in packets
            if p.udp and p.udp.src_port == 1900 and p.is_unicast
            and p.udp.payload.startswith(b"HTTP/1.1 200")
        ]
        assert responses

    def test_lg_firmware_rotation_in_user_agent(self, mini_capture):
        testbed, packets = mini_capture
        agents = set()
        for packet in packets:
            if packet.udp and packet.udp.dst_port == 1900:
                try:
                    message = SsdpMessage.decode(packet.udp.payload)
                except ValueError:
                    continue
                agent = message.headers.get("USER-AGENT")
                if agent:
                    agents.add(agent)
        assert any("WebOS" in agent for agent in agents)

    def test_tplink_discovery_answered_with_geolocation(self, mini_capture):
        testbed, packets = mini_capture
        sysinfo_responses = []
        for packet in packets:
            if packet.udp and packet.udp.src_port == 9999:
                try:
                    message = TplinkShpMessage.decode(packet.udp.payload)
                except ValueError:
                    continue
                if message.sysinfo:
                    sysinfo_responses.append(message.sysinfo)
        assert sysinfo_responses
        assert all("latitude" in info for info in sysinfo_responses)

    def test_jinvoo_tuya_plaintext_gwid(self, mini_capture):
        testbed, packets = mini_capture
        jinvoo = testbed.device("tuya-automation-3")
        plaintext = []
        for packet in packets:
            if packet.udp and packet.udp.dst_port in (6666, 6667):
                try:
                    message = TuyaLpMessage.decode(packet.udp.payload)
                except ValueError:
                    continue
                if not message.encrypted:
                    plaintext.append(message)
        assert plaintext
        assert any(m.gw_id == jinvoo.tuya_gw_id for m in plaintext)

    def test_echo_unknown_broadcast_to_56700(self, mini_capture):
        testbed, packets = mini_capture
        lifx = [p for p in packets if p.udp and p.udp.dst_port == 56700 and p.is_broadcast]
        assert lifx

    def test_tuya_devices_do_not_answer_strangers(self, mini_capture):
        testbed, packets = mini_capture
        # §5.1: Tuya devices do not respond unless queried by their
        # companion app — no unicast traffic *from* tuya port 6667.
        unicast_from_tuya = [
            p for p in packets
            if p.udp and p.udp.src_port in (6666, 6667) and p.is_unicast
        ]
        assert unicast_from_tuya == []


class TestIdentifiers:
    def test_stable_per_device_identifiers(self):
        testbed_a = build_testbed(seed=99)
        testbed_b = build_testbed(seed=99)
        device_a = testbed_a.device("amazon-echo-spot-1")
        device_b = testbed_b.device("amazon-echo-spot-1")
        assert device_a.uuid == device_b.uuid
        assert device_a.mac == device_b.mac
        assert device_a.tuya_gw_id == device_b.tuya_gw_id

    def test_different_seeds_differ(self):
        a = build_testbed(seed=1).device("amazon-echo-spot-1")
        b = build_testbed(seed=2).device("amazon-echo-spot-1")
        assert a.uuid != b.uuid

    def test_macs_match_vendor_ouis(self):
        from repro.net.oui import DEFAULT_OUI_REGISTRY

        testbed = build_testbed(seed=5)
        mismatches = [
            node.name
            for node in testbed.devices
            if DEFAULT_OUI_REGISTRY.vendor_of(node.mac)
            not in (node.vendor, None)
        ]
        assert mismatches == []

    def test_randomized_hostname_changes(self, mini_testbed):
        # GE-style devices produce a fresh hostname per request.
        testbed = build_testbed(seed=3)
        ge = testbed.device("ge-microwave-1")
        assert ge.dhcp_hostname() != ge.dhcp_hostname()

    def test_display_name_hostname(self):
        testbed = build_testbed(seed=3)
        homepod = testbed.device("apple-homepod-mini-1")
        assert "Jane-Doe" in homepod.dhcp_hostname()


class TestClusters:
    def test_amazon_tls_star(self, full_testbed_run):
        testbed, packets = full_testbed_run
        amazon_macs = {str(n.mac) for n in testbed.devices_of_vendor("Amazon")}
        tls_pairs = set()
        for packet in packets:
            if (packet.tcp and packet.tcp.payload[:1] == b"\x16"
                    and str(packet.frame.src) in amazon_macs
                    and str(packet.frame.dst) in amazon_macs):
                tls_pairs.add((str(packet.frame.src), str(packet.frame.dst)))
        assert tls_pairs  # Echo cluster talks TLS internally

    def test_apple_uses_tls13(self, full_testbed_run):
        from repro.protocols.tls import HandshakeType, TlsVersion, iter_records

        testbed, packets = full_testbed_run
        apple_macs = {str(n.mac) for n in testbed.devices_of_vendor("Apple")}
        versions = set()
        for packet in packets:
            if packet.tcp and str(packet.frame.src) in apple_macs and packet.tcp.payload:
                for record in iter_records(packet.tcp.payload):
                    handshake = record.handshake()
                    if handshake and handshake.handshake_type in (
                        HandshakeType.CLIENT_HELLO, HandshakeType.SERVER_HELLO,
                    ):
                        versions.add(handshake.version)
        assert TlsVersion.TLS_1_3 in versions

    def test_echo_arp_sweep_covers_ip_space(self, full_testbed_run):
        testbed, packets = full_testbed_run
        echo_macs = {str(n.mac) for n in testbed.devices
                     if n.vendor == "Amazon" and n.profile.category == "Voice Assistant"}
        sweep_targets = {
            p.arp.target_ip for p in packets
            if p.arp and p.arp.op == 1 and str(p.frame.src) in echo_macs and p.is_broadcast
        }
        assert len(sweep_targets) > 200  # the whole /24 swept

    def test_interop_edges_exist(self, full_testbed_run):
        testbed, packets = full_testbed_run
        # Controller -> TP-Link TCP 9999 (unauthenticated control, §5.1).
        tplink_macs = {str(n.mac) for n in testbed.devices_of_vendor("TP-Link")}
        control = [
            p for p in packets
            if p.tcp and p.tcp.dst_port == 9999 and str(p.frame.dst) in tplink_macs
            and p.tcp.payload
        ]
        assert control
