"""Tests for the §3.1 scripted-interaction dataset."""

import pytest

from repro.devices.behaviors import build_testbed
from repro.devices.interactions import (
    Action,
    InteractionKind,
    InteractionRunner,
)


@pytest.fixture(scope="module")
def ran_interactions():
    testbed = build_testbed(seed=17)
    testbed.run(20.0)
    runner = InteractionRunner(testbed)
    runner.run(count=40, gap=1.0)
    return testbed, runner


class TestInteractionRunner:
    def test_all_interactions_recorded(self, ran_interactions):
        testbed, runner = ran_interactions
        assert len(runner.records) == 40
        assert [record.index for record in runner.records] == list(range(40))

    def test_both_trigger_kinds_used(self, ran_interactions):
        testbed, runner = ran_interactions
        kinds = {record.kind for record in runner.records}
        assert kinds == {InteractionKind.COMPANION_APP, InteractionKind.VOICE_ASSISTANT}

    def test_labels_are_time_ordered(self, ran_interactions):
        testbed, runner = ran_interactions
        starts = [record.start for record in runner.records]
        assert starts == sorted(starts)
        assert all(record.end >= record.start for record in runner.records)

    def test_traffic_reaches_target(self, ran_interactions):
        testbed, runner = ran_interactions
        reached = sum(
            1 for record in runner.records
            if runner.interaction_reached_target(record)
        )
        # TPLINK/HTTP/TLS controls all go controller -> target directly.
        assert reached / len(runner.records) > 0.9

    def test_action_matches_device_type(self, ran_interactions):
        testbed, runner = ran_interactions
        for record in runner.records:
            target = testbed.device(record.target)
            if "Plug" in target.profile.model:
                assert record.action in (Action.POWER_TOGGLE, Action.SET_BRIGHTNESS)
            if target.profile.category == "Media/TV":
                assert record.action is Action.CAST_MEDIA

    def test_label_rows_shape(self, ran_interactions):
        testbed, runner = ran_interactions
        rows = runner.label_rows()
        assert len(rows) == 40
        assert all(len(row) == 7 for row in rows)

    def test_tplink_interaction_uses_shp(self, ran_interactions):
        testbed, runner = ran_interactions
        tplink_records = [r for r in runner.records if r.target.startswith("tplink")]
        if not tplink_records:
            pytest.skip("no TP-Link interaction in this sample")
        record = tplink_records[0]
        slice_packets = runner.traffic_during(record)
        assert any(
            packet.tcp is not None and packet.tcp.dst_port == 9999 and packet.tcp.payload
            for packet in slice_packets
        )

    def test_deterministic(self):
        def run_once():
            testbed = build_testbed(seed=19)
            testbed.run(5.0)
            runner = InteractionRunner(testbed)
            runner.run(count=10, gap=0.5)
            return [(r.target, r.action) for r in runner.records]

        assert run_once() == run_once()

    def test_requires_controllable_devices(self):
        from repro.devices.catalog import build_catalog

        profiles = [p for p in build_catalog() if p.name == "blink-camera-1"]
        testbed = build_testbed(seed=3, profiles=profiles)
        with pytest.raises(RuntimeError):
            InteractionRunner(testbed).run(1)
