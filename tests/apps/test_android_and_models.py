"""Tests for the Android permission model, SDK models, and app dataset."""

import pytest

from repro.apps.android import (
    AndroidApi,
    AndroidPermission,
    AndroidVersion,
    PermissionDenied,
    PermissionModel,
)
from repro.apps.appmodel import AppCategory, Identifier, ScanProtocol
from repro.apps.dataset import (
    DATASET_SIZE,
    IOT_APP_COUNT,
    REGULAR_APP_COUNT,
    generate_app_dataset,
    named_case_study_apps,
)
from repro.apps.sdks import SDK_REGISTRY, sdk_by_name


class TestPermissionModel:
    def test_ssid_requires_location_on_pie(self):
        model = PermissionModel(AndroidVersion.PIE)
        granted = {AndroidPermission.INTERNET, AndroidPermission.ACCESS_WIFI_STATE}
        with pytest.raises(PermissionDenied):
            model.enforce(AndroidApi.WIFI_INFO_GET_SSID, granted)
        granted.add(AndroidPermission.ACCESS_COARSE_LOCATION)
        model.enforce(AndroidApi.WIFI_INFO_GET_SSID, granted)  # no raise

    def test_ssid_requires_nearby_on_tiramisu(self):
        model = PermissionModel(AndroidVersion.TIRAMISU)
        granted = {AndroidPermission.ACCESS_WIFI_STATE, AndroidPermission.ACCESS_FINE_LOCATION}
        # Location no longer suffices on Android 13.
        with pytest.raises(PermissionDenied):
            model.enforce(AndroidApi.WIFI_INFO_GET_SSID, granted)
        granted.add(AndroidPermission.NEARBY_WIFI_DEVICES)
        model.enforce(AndroidApi.WIFI_INFO_GET_SSID, granted)

    def test_nsd_discovery_needs_no_dangerous_permission(self):
        """The §2.1 PoC: mDNS/SSDP scanning with only INTERNET +
        CHANGE_WIFI_MULTICAST_STATE, neither of which is dangerous."""
        model = PermissionModel(AndroidVersion.TIRAMISU)
        granted = {
            AndroidPermission.INTERNET,
            AndroidPermission.CHANGE_WIFI_MULTICAST_STATE,
        }
        model.enforce(AndroidApi.NSD_DISCOVER_SERVICES, granted)
        assert not any(PermissionModel.is_dangerous(p) for p in granted)

    def test_raw_socket_always_denied(self):
        model = PermissionModel(AndroidVersion.PIE)
        with pytest.raises(PermissionDenied):
            model.enforce(AndroidApi.RAW_SOCKET, set(AndroidPermission))

    def test_advertising_id_free(self):
        model = PermissionModel(AndroidVersion.PIE)
        model.enforce(AndroidApi.ADVERTISING_ID, set())

    def test_denied_exception_lists_requirements(self):
        model = PermissionModel(AndroidVersion.PIE)
        with pytest.raises(PermissionDenied) as excinfo:
            model.enforce(AndroidApi.LOCATION_GET_LAST, set())
        assert "LOCATION" in str(excinfo.value)


class TestSdkModels:
    def test_registry_contains_named_sdks(self):
        for name in ("innosdk", "AppDynamics", "umlaut-insightCore", "MyTracker", "Amplitude"):
            assert sdk_by_name(name) is not None

    def test_innosdk_behaviour(self):
        innosdk = sdk_by_name("innosdk")
        assert ScanProtocol.NETBIOS in innosdk.scan_protocols
        assert ScanProtocol.ARP in innosdk.scan_protocols
        assert innosdk.algorithmic_payload
        assert innosdk.scans_entire_prefix
        assert innosdk.exfil[0].endpoint == "gw.innotechworld.com"

    def test_appdynamics_base64_side_channel(self):
        appdynamics = sdk_by_name("AppDynamics")
        rule = appdynamics.exfil[0]
        assert rule.endpoint == "events.claspws.tv/v1/event"
        assert rule.encode_base64
        assert Identifier.ROUTER_SSID in rule.identifiers
        assert Identifier.SCREEN_DEVICE_LIST in rule.identifiers

    def test_umlaut_targets_igd(self):
        umlaut = sdk_by_name("umlaut-insightCore")
        assert ScanProtocol.SSDP in umlaut.scan_protocols
        assert Identifier.GEOLOCATION in umlaut.exfil[0].identifiers

    def test_unknown_sdk(self):
        assert sdk_by_name("nope") is None


class TestAppDataset:
    @pytest.fixture(scope="class")
    def apps(self):
        return generate_app_dataset(seed=11)

    def test_size_split(self, apps):
        assert len(apps) == DATASET_SIZE == 2335
        iot = sum(1 for a in apps if a.category is AppCategory.IOT)
        assert iot == IOT_APP_COUNT == 987
        assert len(apps) - iot == REGULAR_APP_COUNT == 1348

    def test_deterministic(self):
        first = generate_app_dataset(seed=11)
        second = generate_app_dataset(seed=11)
        assert [a.package for a in first] == [a.package for a in second]

    def test_unique_packages(self, apps):
        packages = [a.package for a in apps]
        assert len(packages) == len(set(packages))

    def test_named_apps_present(self, apps):
        packages = {a.package for a in apps}
        for expected in ("com.amazon.dee.app", "com.tuya.smart", "com.cnn.mobile.android.phone",
                         "com.luckyapp.winner", "org.speedspot.speedspotspeedtest"):
            assert expected in packages

    def test_scan_rates_match_paper(self, apps):
        n = len(apps)
        mdns = sum(1 for a in apps if ScanProtocol.MDNS in a.all_scan_protocols)
        ssdp = sum(1 for a in apps if ScanProtocol.SSDP in a.all_scan_protocols)
        netbios = sum(1 for a in apps if ScanProtocol.NETBIOS in a.all_scan_protocols)
        assert abs(mdns / n - 0.06) < 0.005  # §4.3: 6%
        assert abs(ssdp / n - 0.04) < 0.005  # §4.3: 4%
        assert netbios == 10  # §6.1: 10 apps
        scanners = sum(
            1 for a in apps
            if any(p in a.all_scan_protocols
                   for p in (ScanProtocol.MDNS, ScanProtocol.SSDP, ScanProtocol.NETBIOS))
        )
        assert 0.08 <= scanners / n <= 0.11  # §6.1: 9%

    def test_netbios_mostly_regular_apps(self, apps):
        # §6.1: only 2 of the 10 NetBIOS apps are IoT apps.
        netbios_iot = sum(
            1 for a in apps
            if ScanProtocol.NETBIOS in a.all_scan_protocols and a.category is AppCategory.IOT
        )
        assert netbios_iot <= 3

    def test_upload_quotas(self, apps):
        def uploads(identifier):
            return sum(
                1 for a in apps
                if any(identifier in rule.identifiers for rule in a.all_exfil_rules)
            )

        assert abs(uploads(Identifier.ROUTER_SSID) - 36) <= 2
        assert abs(uploads(Identifier.ROUTER_MAC) - 28) <= 6
        assert abs(uploads(Identifier.WIFI_MAC) - 15) <= 2
        assert sum(1 for a in apps if a.receives_downlink_macs) == 13

    def test_tls_rate(self, apps):
        tls = sum(1 for a in apps if a.uses_tls_to_devices)
        assert abs(tls / len(apps) - 0.25) < 0.01  # §4.3: 25%

    def test_case_study_sdk_embedding(self, apps):
        cnn = next(a for a in apps if a.package.startswith("com.cnn"))
        assert cnn.has_sdk("AppDynamics")
        lucky = next(a for a in apps if a.package == "com.luckyapp.winner")
        assert lucky.has_sdk("innosdk")
        speedcheck = next(a for a in apps if a.package.startswith("org.speedspot"))
        assert speedcheck.has_sdk("umlaut-insightCore")

    def test_sdk_protocols_inherited(self):
        lucky = next(a for a in named_case_study_apps() if a.package == "com.luckyapp.winner")
        # The app itself declares no scanning; innosdk brings NetBIOS+ARP.
        assert not lucky.scan_protocols
        assert ScanProtocol.NETBIOS in lucky.all_scan_protocols
        assert ScanProtocol.ARP in lucky.all_scan_protocols
