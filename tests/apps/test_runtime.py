"""Tests for the instrumented-phone runtime on the simulated LAN."""

import pytest

from repro.apps.appmodel import AppCategory, AppModel, ExfilRule, Identifier, ScanProtocol
from repro.apps.dataset import generate_app_dataset
from repro.apps.runtime import InstrumentedPhone
from repro.apps.sdks import sdk_by_name

BASE_PERMS = ["android.permission.INTERNET", "android.permission.ACCESS_WIFI_STATE"]
MULTICAST = "android.permission.CHANGE_WIFI_MULTICAST_STATE"
LOCATION = "android.permission.ACCESS_COARSE_LOCATION"


@pytest.fixture
def phone(mini_testbed):
    mini_testbed.run(30.0)
    phone = InstrumentedPhone()
    mini_testbed.lan.attach(phone)
    return mini_testbed, phone


class TestScanning:
    def test_mdns_harvests_hostnames_and_uuids(self, phone):
        testbed, device = phone
        app = AppModel("com.test.mdns", "t", AppCategory.REGULAR,
                       permissions=BASE_PERMS + [MULTICAST],
                       scan_protocols=[ScanProtocol.MDNS])
        result = device.run_app(app)
        assert "mdns" in result.protocols_used
        assert result.harvested_values(Identifier.HOSTNAMES)
        assert result.harvested_values(Identifier.DEVICE_UUID)

    def test_ssdp_harvests_uuids(self, phone):
        testbed, device = phone
        app = AppModel("com.test.ssdp", "t", AppCategory.REGULAR,
                       permissions=BASE_PERMS + [MULTICAST],
                       scan_protocols=[ScanProtocol.SSDP])
        result = device.run_app(app)
        assert result.harvested_values(Identifier.DEVICE_UUID)
        # Device UUIDs harvested via SSDP match real testbed devices.
        uuids = {n.uuid for n in testbed.devices}
        assert result.harvested_values(Identifier.DEVICE_UUID) & uuids

    def test_arp_harvests_all_macs(self, phone):
        testbed, device = phone
        app = AppModel("com.test.arp", "t", AppCategory.REGULAR,
                       permissions=BASE_PERMS, scan_protocols=[ScanProtocol.ARP])
        result = device.run_app(app)
        harvested = result.harvested_values(Identifier.DEVICE_MAC)
        real = {str(n.mac) for n in testbed.devices}
        assert harvested & real

    def test_tplink_harvests_geolocation(self, phone):
        testbed, device = phone
        app = AppModel("com.test.tplink", "t", AppCategory.IOT,
                       permissions=BASE_PERMS, scan_protocols=[ScanProtocol.TPLINK_SHP])
        result = device.run_app(app)
        assert result.harvested_values(Identifier.GEOLOCATION)
        assert result.harvested_values(Identifier.TPLINK_IDS)

    def test_innosdk_probes_whole_prefix(self, phone):
        testbed, device = phone
        app = AppModel("com.test.lucky", "t", AppCategory.REGULAR,
                       permissions=BASE_PERMS, sdks=[sdk_by_name("innosdk")])
        result = device.run_app(app)
        # 253 NetBIOS probes (whole /24) plus an ARP sweep.
        assert result.lan_packets_sent >= 450
        assert {"netbios", "arp"} <= result.protocols_used

    def test_plain_app_does_nothing(self, phone):
        testbed, device = phone
        app = AppModel("com.test.inert", "t", AppCategory.REGULAR, permissions=BASE_PERMS)
        result = device.run_app(app)
        assert result.lan_packets_sent == 0
        assert not result.cloud_flows


class TestPermissions:
    def test_ssid_via_api_with_location(self, phone):
        testbed, device = phone
        app = AppModel("com.test.loc", "t", AppCategory.REGULAR,
                       permissions=BASE_PERMS + [LOCATION],
                       exfil=[ExfilRule("x.example", [Identifier.ROUTER_SSID])])
        result = device.run_app(app)
        access = [a for a in result.api_accesses if a.api.value == "WifiInfo.getSSID"]
        assert access and access[0].granted

    def test_ssid_side_channel_without_location(self, phone):
        """§6.1: data dissemination without the necessary permissions."""
        testbed, device = phone
        app = AppModel("com.test.sidechannel", "t", AppCategory.REGULAR,
                       permissions=BASE_PERMS + [MULTICAST],
                       scan_protocols=[ScanProtocol.SSDP],
                       exfil=[ExfilRule("x.example", [Identifier.ROUTER_SSID])])
        result = device.run_app(app)
        side = [a for a in result.api_accesses if a.via_side_channel]
        assert side
        assert result.harvested_values(Identifier.ROUTER_SSID) == {"MonIoTr-Lab"}

    def test_no_side_channel_without_scanning(self, phone):
        testbed, device = phone
        app = AppModel("com.test.blocked", "t", AppCategory.REGULAR,
                       permissions=BASE_PERMS,
                       exfil=[ExfilRule("x.example", [Identifier.ROUTER_SSID])])
        result = device.run_app(app)
        assert not result.harvested_values(Identifier.ROUTER_SSID)
        assert not result.cloud_flows


class TestCloudFlows:
    def test_exfil_carries_real_values(self, phone):
        testbed, device = phone
        app = AppModel("com.test.exfil", "t", AppCategory.IOT,
                       permissions=BASE_PERMS,
                       scan_protocols=[ScanProtocol.ARP],
                       exfil=[ExfilRule("cloud.example", [Identifier.DEVICE_MAC], party="first")])
        result = device.run_app(app)
        flows = result.uploads_of(Identifier.DEVICE_MAC)
        assert flows
        uploaded = set(flows[0].payload_values())
        real = {str(n.mac) for n in testbed.devices}
        assert uploaded & real

    def test_appdynamics_base64(self, phone):
        testbed, device = phone
        apps = generate_app_dataset(seed=11)
        cnn = next(a for a in apps if a.package.startswith("com.cnn"))
        result = device.run_app(cnn)
        flow = next(f for f in result.cloud_flows if f.sdk == "AppDynamics")
        assert flow.encoded_base64
        import base64

        decoded = base64.b64decode(flow.payload["router_ssid"]).decode()
        assert decoded == "MonIoTr-Lab"

    def test_downlink_macs(self, phone):
        testbed, device = phone
        app = AppModel("com.test.down", "t", AppCategory.IOT,
                       permissions=BASE_PERMS, companion_vendors=["TP-Link"],
                       receives_downlink_macs=True)
        result = device.run_app(app)
        down = [f for f in result.cloud_flows if f.direction == "down"]
        assert down
        macs = down[0].payload["device_mac"]
        non_companions = {str(n.mac) for n in testbed.devices if n.vendor != "TP-Link"}
        assert set(macs) <= non_companions

    def test_tls_pairing_with_companion(self, phone):
        testbed, device = phone
        app = AppModel("com.test.pair", "t", AppCategory.IOT,
                       permissions=BASE_PERMS, companion_vendors=["Philips"],
                       uses_tls_to_devices=True)
        result = device.run_app(app)
        assert "tls" in result.protocols_used
        hue = testbed.device("philips-hue-hub-1")
        assert str(hue.mac) in result.harvested_values(Identifier.DEVICE_MAC)

    def test_alexa_case_study_end_to_end(self, phone):
        testbed, device = phone
        apps = generate_app_dataset(seed=11)
        alexa = next(a for a in apps if a.package == "com.amazon.dee.app")
        result = device.run_app(alexa)
        # §6.1: the Alexa app relays TP-Link ids + device MACs first-party.
        uploads = result.uploads_of(Identifier.TPLINK_IDS)
        assert uploads and uploads[0].party == "first"
        assert result.uploads_of(Identifier.DEVICE_MAC)
