"""Tests for the iOS local-network model (§2.1)."""

import pytest

from repro.apps.ios import (
    IosApp,
    IosCapability,
    IosPermissionModel,
    LocalNetworkDenied,
    contrast_with_android,
)


@pytest.fixture
def model():
    return IosPermissionModel(version=16)


class TestIosModel:
    def test_multicast_needs_entitlement(self, model):
        app = IosApp("com.example.scan", has_usage_description=True,
                     user_granted_local_network=True)
        with pytest.raises(LocalNetworkDenied) as excinfo:
            model.check_multicast(app)
        assert "entitlement" in str(excinfo.value)

    def test_needs_usage_description(self, model):
        app = IosApp("com.example.scan",
                     entitlements={IosCapability.MULTICAST_ENTITLEMENT},
                     user_granted_local_network=True)
        with pytest.raises(LocalNetworkDenied) as excinfo:
            model.check_multicast(app)
        assert "NSLocalNetworkUsageDescription" in str(excinfo.value)

    def test_needs_user_consent(self, model):
        app = IosApp("com.example.scan",
                     entitlements={IosCapability.MULTICAST_ENTITLEMENT},
                     has_usage_description=True)
        with pytest.raises(LocalNetworkDenied) as excinfo:
            model.check_multicast(app)
        assert "user" in str(excinfo.value)

    def test_fully_authorized_app_may_scan(self, model):
        app = IosApp("com.example.scan",
                     entitlements={IosCapability.MULTICAST_ENTITLEMENT},
                     has_usage_description=True,
                     user_granted_local_network=True)
        assert model.can_scan(app)

    def test_unicast_still_gated(self, model):
        # §2.1: even unicast local connections require the permission.
        app = IosApp("com.example.unicast")
        with pytest.raises(LocalNetworkDenied):
            model.check_local_network(app)

    def test_contrast_documents_the_asymmetry(self):
        lines = contrast_with_android()
        assert any("dangerous" in line for line in lines)
        assert any("Apple-approved" in line for line in lines)


class TestMatterIntegration:
    def test_echo_advertises_matter_over_ipv6(self):
        from repro.classify import NdpiLikeClassifier
        from repro.classify.labels import Label
        from repro.devices.behaviors import build_testbed

        testbed = build_testbed(seed=7)
        testbed.run(120.0)
        ndpi = NdpiLikeClassifier()
        matter = [
            packet for packet in testbed.lan.capture.decoded()
            if ndpi.classify_packet(packet) is Label.MATTER
        ]
        assert matter
        assert all(packet.ipv6 is not None for packet in matter)
        # Only Matter-capable devices (Amazon Echo fleet) advertise.
        senders = {str(packet.frame.src) for packet in matter}
        amazon = {str(node.mac) for node in testbed.devices_of_vendor("Amazon")}
        assert senders <= amazon

    def test_companion_apps_advertise_matter(self, mini_testbed):
        from repro.apps.dataset import generate_app_dataset
        from repro.apps.runtime import InstrumentedPhone

        mini_testbed.run(10.0)
        phone = InstrumentedPhone()
        mini_testbed.lan.attach(phone)
        apps = generate_app_dataset(seed=11)
        tuya = next(app for app in apps if app.package == "com.tuya.smart")
        result = phone.run_app(tuya)
        assert "matter" in result.protocols_used

    def test_regular_apps_do_not_advertise_matter(self, mini_testbed):
        from repro.apps.appmodel import AppCategory, AppModel
        from repro.apps.runtime import InstrumentedPhone

        mini_testbed.run(10.0)
        phone = InstrumentedPhone()
        mini_testbed.lan.attach(phone)
        app = AppModel("com.other.app", "x", AppCategory.REGULAR,
                       permissions=["android.permission.INTERNET"])
        result = phone.run_app(app)
        assert "matter" not in result.protocols_used
