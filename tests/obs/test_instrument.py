"""Tests for the decorators and the observability context plumbing."""

import pytest

from repro.obs import (
    NULL_OBS,
    counted,
    enable_observability,
    get_obs,
    set_obs,
    timed,
    use_obs,
)


@pytest.fixture(autouse=True)
def reset_global_obs():
    yield
    set_obs(None)


class TestContext:
    def test_default_is_null(self):
        assert get_obs() is NULL_OBS
        assert not get_obs().enabled

    def test_use_obs_restores_previous(self):
        obs = enable_observability()
        with use_obs(obs):
            assert get_obs() is obs
        assert get_obs() is NULL_OBS

    def test_use_obs_restores_on_error(self):
        obs = enable_observability()
        with pytest.raises(RuntimeError):
            with use_obs(obs):
                raise RuntimeError("boom")
        assert get_obs() is NULL_OBS

    def test_install_global(self):
        obs = enable_observability(install=True)
        assert get_obs() is obs
        set_obs(None)
        assert get_obs() is NULL_OBS

    def test_set_sim_clock_reaches_tracer_and_logs(self):
        obs = enable_observability()
        obs.set_sim_clock(lambda: 42.0)
        with obs.tracer.span("x") as span:
            pass
        assert span.sim_start == 42.0
        assert obs.logs.clock() == 42.0


class TestTimed:
    def test_records_histogram_when_enabled(self):
        obs = enable_observability()

        @timed("work_seconds")
        def work():
            return "done"

        with use_obs(obs):
            assert work() == "done"
        hist = obs.metrics.get("work_seconds")
        assert hist.count() == 1
        assert hist.sum() >= 0.0

    def test_span_option_traces_calls(self):
        obs = enable_observability()

        @timed("work_seconds", span="work")
        def work():
            return 1

        with use_obs(obs):
            work()
            work()
        assert len(obs.tracer.find("work")) == 2

    def test_noop_when_disabled(self):
        obs = enable_observability()

        @timed("work_seconds")
        def work():
            return "done"

        assert work() == "done"  # NULL_OBS active
        assert obs.metrics.get("work_seconds") is None


class TestCounted:
    def test_counts_ok_and_error_outcomes(self):
        obs = enable_observability()

        @counted("calls_total", kind="test")
        def sometimes(fail):
            if fail:
                raise ValueError("nope")
            return True

        with use_obs(obs):
            sometimes(False)
            sometimes(False)
            with pytest.raises(ValueError):
                sometimes(True)
        counter = obs.metrics.get("calls_total")
        assert counter.value(outcome="ok", kind="test") == 2
        assert counter.value(outcome="error", kind="test") == 1

    def test_noop_when_disabled(self):
        obs = enable_observability()

        @counted("calls_total")
        def call():
            return 7

        assert call() == 7
        assert obs.metrics.get("calls_total") is None

    def test_wraps_preserves_metadata(self):
        @counted("calls_total")
        def documented():
            """docstring survives"""

        assert documented.__name__ == "documented"
        assert "survives" in documented.__doc__
