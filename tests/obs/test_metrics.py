"""Unit tests for the metrics registry, families, and exporters."""

import json
import math

import pytest

from repro.obs import MetricsRegistry, NullMetricsRegistry, parse_prometheus_text
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_labels_are_independent(self):
        counter = MetricsRegistry().counter("packets_total")
        counter.inc(protocol="mdns")
        counter.inc(2, protocol="ssdp")
        assert counter.value(protocol="mdns") == 1
        assert counter.value(protocol="ssdp") == 2
        assert counter.value(protocol="dns") == 0
        assert counter.total() == 3

    def test_label_order_does_not_matter(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_same_name_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13

    def test_labelled(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3, queue="a")
        assert gauge.value(queue="a") == 3
        assert gauge.value() == 0


class TestHistogramBucketEdges:
    def test_value_on_edge_lands_in_that_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)  # le semantics: exactly-on-edge counts
        hist.observe(2.0)
        hist.observe(2.0000001)
        assert hist.cumulative_buckets() == [
            (1.0, 1), (2.0, 2), (4.0, 3), (math.inf, 3)]

    def test_overflow_goes_to_inf_only(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(100.0)
        assert hist.cumulative_buckets() == [(1.0, 0), (math.inf, 1)]
        assert hist.count() == 1
        assert hist.sum() == 100.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h2", buckets=(1.0, 1.0))

    def test_labelled_series_are_independent(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(0.5, stage="build")
        hist.observe(0.7, stage="scan")
        assert hist.count(stage="build") == 1
        assert hist.count(stage="scan") == 1
        assert hist.count() == 0


class TestScoping:
    def test_scoped_prefixes_names(self):
        registry = MetricsRegistry()
        child = registry.scoped("sim")
        child.counter("events_total").inc()
        assert registry.get("sim_events_total").value() == 1

    def test_nested_scopes(self):
        registry = MetricsRegistry()
        grandchild = registry.scoped("a").scoped("b")
        grandchild.gauge("depth").set(2)
        assert registry.get("a_b_depth").value() == 2

    def test_scoped_shares_storage(self):
        registry = MetricsRegistry()
        registry.scoped("x").counter("c")
        assert "x_c" in [metric.name for metric in registry]


class TestExport:
    def _populated(self):
        registry = MetricsRegistry()
        counter = registry.counter("packets_total", "frames seen")
        counter.inc(7, protocol="mdns")
        counter.inc(3, protocol="arp")
        registry.gauge("depth").set(4)
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        return registry

    def test_json_is_valid_and_complete(self):
        registry = self._populated()
        data = json.loads(registry.to_json())
        assert data["packets_total"]["type"] == "counter"
        samples = {tuple(sorted(s["labels"].items())): s["value"]
                   for s in data["packets_total"]["samples"]}
        assert samples[(("protocol", "mdns"),)] == 7
        assert data["lat"]["series"][0]["count"] == 2

    def test_from_dict_round_trip(self):
        registry = self._populated()
        rebuilt = MetricsRegistry.from_dict(registry.to_dict())
        assert rebuilt.to_dict() == registry.to_dict()
        assert rebuilt.to_prometheus_text() == registry.to_prometheus_text()

    def test_prometheus_text_round_trip(self):
        registry = self._populated()
        parsed = parse_prometheus_text(registry.to_prometheus_text())
        assert parsed["packets_total"][(("protocol", "mdns"),)] == 7.0
        assert parsed["packets_total"][(("protocol", "arp"),)] == 3.0
        assert parsed["depth"][()] == 4.0
        assert parsed["lat_count"][()] == 2.0
        assert parsed["lat_bucket"][(("le", "0.1"),)] == 1.0
        assert parsed["lat_bucket"][(("le", "+Inf"),)] == 2.0

    def test_export_is_deterministic(self):
        assert self._populated().to_json() == self._populated().to_json()


class TestLabelEscaping:
    """Prometheus exposition escaping for hostile label values.

    The exposition format requires ``\\`` → ``\\\\``, ``"`` → ``\\"``
    and newline → ``\\n`` inside label values; device names and mDNS
    service strings from real captures contain all three.
    """

    HOSTILE = {
        "quote": 'say "cheese"',
        "backslash": "C:\\Users\\iot\\device",
        "newline": "line one\nline two",
        "mixed": 'a\\b"c\nd"e\\',
        "trailing_backslash": "ends with \\",
    }

    def test_hostile_values_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("names_total")
        for key, value in self.HOSTILE.items():
            counter.inc(2, name=value, case=key)
        text = registry.to_prometheus_text()
        parsed = parse_prometheus_text(text)
        for key, value in self.HOSTILE.items():
            labels = tuple(sorted({"name": value, "case": key}.items()))
            assert parsed["names_total"][labels] == 2.0, key

    def test_exposition_lines_stay_single_line(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(name="evil\nc 999")
        sample_lines = [line for line in
                        registry.to_prometheus_text().splitlines()
                        if line.startswith("c{")]
        # An unescaped newline would smuggle a fake sample line in.
        assert len(sample_lines) == 1
        assert '\\n' in sample_lines[0]

    def test_escaped_quote_does_not_end_the_value(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7, a='x",b="y')
        parsed = parse_prometheus_text(registry.to_prometheus_text())
        assert parsed["c"][(("a", 'x",b="y'),)] == 7.0


class TestNullRegistry:
    def test_writes_are_swallowed(self):
        registry = NullMetricsRegistry()
        registry.counter("c").inc(100)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert registry.to_dict() == {}

    def test_scoped_returns_self(self):
        registry = NullMetricsRegistry()
        assert registry.scoped("sub") is registry

    def test_shared_singletons_hold_no_state(self):
        a = NullMetricsRegistry()
        a.counter("c").inc(5)
        assert NullMetricsRegistry().counter("c").value() == 0
