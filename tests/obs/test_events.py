"""Tests for the NDJSON event bus (``repro.obs.events``)."""

import io
import json

import pytest

from repro.obs import EventBus, NullEventBus, open_event_stream, process_stats
from repro.obs.events import SCHEMA_VERSION


def _records(sink: io.StringIO):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestEventBus:
    def test_emit_writes_schema_versioned_ndjson(self):
        sink = io.StringIO()
        bus = EventBus(sink, clock=lambda: 1234.5)
        bus.emit("run_start", kind="study", seed=7)
        bus.emit("stage_start", stage="build")
        records = _records(sink)
        assert [r["event"] for r in records] == ["run_start", "stage_start"]
        first = records[0]
        assert first["v"] == SCHEMA_VERSION
        assert first["wall"] == 1234.5
        assert first["seed"] == 7 and first["kind"] == "study"
        assert isinstance(first["pid"], int)

    def test_seq_is_monotonic_from_one(self):
        sink = io.StringIO()
        bus = EventBus(sink)
        for _ in range(5):
            bus.emit("tick")
        assert [r["seq"] for r in _records(sink)] == [1, 2, 3, 4, 5]

    def test_subscribers_see_every_record(self):
        seen = []
        bus = EventBus(None)
        bus.subscribe(seen.append)
        bus.emit("shard_done", shard=2)
        assert len(seen) == 1
        assert seen[0]["event"] == "shard_done" and seen[0]["shard"] == 2

    def test_heartbeat_is_throttled(self):
        now = [50.0]
        sink = io.StringIO()
        bus = EventBus(sink, clock=lambda: now[0])
        bus.heartbeat(kind="fleet")       # past the (epoch) interval: fires
        bus.heartbeat(kind="fleet")       # same instant: suppressed
        now[0] = 100.0
        bus.heartbeat(kind="fleet")       # past the interval: fires
        records = _records(sink)
        assert [r["event"] for r in records] == ["heartbeat", "heartbeat"]

    def test_heartbeat_carries_process_stats(self):
        sink = io.StringIO()
        EventBus(sink).heartbeat(kind="study")
        record = _records(sink)[0]
        # /proc-backed fields; at minimum RSS must be present on Linux.
        assert "rss_bytes" in record or "cpu_seconds" in record

    def test_sink_error_disables_sink_not_bus(self):
        class Broken(io.StringIO):
            def write(self, *_):
                raise OSError("disk full")

        seen = []
        bus = EventBus(Broken())
        bus.subscribe(seen.append)
        bus.emit("a")
        bus.emit("b")  # must not raise again
        assert [r["event"] for r in seen] == ["a", "b"]

    def test_close_is_idempotent(self):
        sink = io.StringIO()
        bus = EventBus(sink, owns_sink=False)
        bus.emit("x")
        bus.close()
        bus.close()
        assert not sink.closed  # not owned, so left open


class TestNullEventBus:
    def test_disabled_and_silent(self):
        bus = NullEventBus()
        assert not bus.enabled
        bus.emit("anything", x=1)
        bus.heartbeat()
        bus.close()


class TestOpenEventStream:
    def test_none_gives_sinkless_live_bus(self):
        bus = open_event_stream(None)
        assert bus.enabled
        bus.emit("x")  # no sink: subscriber-only, must not raise

    def test_dash_streams_to_stderr(self, capsys):
        bus = open_event_stream("-")
        bus.emit("run_start", kind="fleet")
        bus.close()
        record = json.loads(capsys.readouterr().err.strip())
        assert record["event"] == "run_start"

    def test_path_owns_the_file(self, tmp_path):
        target = tmp_path / "events.ndjson"
        bus = open_event_stream(str(target))
        bus.emit("run_start")
        bus.emit("run_end")
        bus.close()
        lines = target.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["event"] == "run_end"


class TestProcessStats:
    def test_returns_numeric_fields(self):
        stats = process_stats()
        assert stats  # Linux container: /proc/self must be readable
        for value in stats.values():
            assert isinstance(value, (int, float))
