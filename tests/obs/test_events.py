"""Tests for the NDJSON event bus (``repro.obs.events``)."""

import io
import json
import threading

import pytest

from repro.obs import EventBus, NullEventBus, open_event_stream, process_stats
from repro.obs.events import SCHEMA_VERSION


def _records(sink: io.StringIO):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestEventBus:
    def test_emit_writes_schema_versioned_ndjson(self):
        sink = io.StringIO()
        bus = EventBus(sink, clock=lambda: 1234.5)
        bus.emit("run_start", kind="study", seed=7)
        bus.emit("stage_start", stage="build")
        records = _records(sink)
        assert [r["event"] for r in records] == ["run_start", "stage_start"]
        first = records[0]
        assert first["v"] == SCHEMA_VERSION
        assert first["wall"] == 1234.5
        assert first["seed"] == 7 and first["kind"] == "study"
        assert isinstance(first["pid"], int)

    def test_seq_is_monotonic_from_one(self):
        sink = io.StringIO()
        bus = EventBus(sink)
        for _ in range(5):
            bus.emit("tick")
        assert [r["seq"] for r in _records(sink)] == [1, 2, 3, 4, 5]

    def test_subscribers_see_every_record(self):
        seen = []
        bus = EventBus(None)
        bus.subscribe(seen.append)
        bus.emit("shard_done", shard=2)
        assert len(seen) == 1
        assert seen[0]["event"] == "shard_done" and seen[0]["shard"] == 2

    def test_heartbeat_is_throttled(self):
        now = [50.0]
        sink = io.StringIO()
        bus = EventBus(sink, clock=lambda: now[0])
        bus.heartbeat(kind="fleet")       # past the (epoch) interval: fires
        bus.heartbeat(kind="fleet")       # same instant: suppressed
        now[0] = 100.0
        bus.heartbeat(kind="fleet")       # past the interval: fires
        records = _records(sink)
        assert [r["event"] for r in records] == ["heartbeat", "heartbeat"]

    def test_heartbeat_carries_process_stats(self):
        sink = io.StringIO()
        EventBus(sink).heartbeat(kind="study")
        record = _records(sink)[0]
        # Current and peak RSS are distinct fields on every platform
        # path (the getrusage fallback only knows the peak).
        assert "rss_bytes" in record
        assert "rss_peak_bytes" in record
        assert "cpu_seconds" in record

    def test_sink_error_disables_sink_not_bus(self):
        class Broken(io.StringIO):
            def write(self, *_):
                raise OSError("disk full")

        seen = []
        bus = EventBus(Broken())
        bus.subscribe(seen.append)
        bus.emit("a")
        bus.emit("b")  # must not raise again
        assert [r["event"] for r in seen] == ["a", "b"]

    def test_close_is_idempotent(self):
        sink = io.StringIO()
        bus = EventBus(sink, owns_sink=False)
        bus.emit("x")
        bus.close()
        bus.close()
        assert not sink.closed  # not owned, so left open


class TestEventBusConcurrency:
    """The bus under concurrent emitters: the fleet's completion
    callbacks and the pipeline's analysis fan-out share one bus."""

    THREADS = 8
    PER_THREAD = 50

    def _hammer(self, work):
        threads = [threading.Thread(target=work, args=(index,))
                   for index in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_seq_is_strictly_monotonic_across_threads(self):
        sink = io.StringIO()
        bus = EventBus(sink)

        def work(index):
            for tick in range(self.PER_THREAD):
                bus.emit("tick", worker=index, tick=tick)

        self._hammer(work)
        seqs = [r["seq"] for r in _records(sink)]
        assert len(seqs) == self.THREADS * self.PER_THREAD
        # Not merely unique: every value 1..N was assigned exactly once.
        assert sorted(seqs) == list(range(1, len(seqs) + 1))

    def test_every_line_is_one_well_formed_record(self):
        sink = io.StringIO()
        bus = EventBus(sink)

        def work(index):
            for tick in range(self.PER_THREAD):
                bus.emit("tick", worker=index, payload="x" * 50)

        self._hammer(work)
        lines = sink.getvalue().splitlines()
        assert len(lines) == self.THREADS * self.PER_THREAD
        for line in lines:
            record = json.loads(line)  # raises on an interleaved write
            assert record["event"] == "tick"
            assert record["v"] == SCHEMA_VERSION
            assert record["payload"] == "x" * 50

    def test_concurrent_heartbeats_fire_exactly_once_per_interval(self):
        now = [50.0]
        sink = io.StringIO()
        bus = EventBus(sink, clock=lambda: now[0])

        def work(index):
            bus.heartbeat(kind="worker", worker=index)

        self._hammer(work)           # same instant: exactly one passes
        now[0] = 100.0
        self._hammer(work)           # next interval: exactly one more
        beats = [r for r in _records(sink) if r["event"] == "heartbeat"]
        assert len(beats) == 2

    def test_subscribers_receive_every_concurrent_record(self):
        seen = []
        lock = threading.Lock()
        bus = EventBus(None)

        def collect(record):
            with lock:
                seen.append(record)

        bus.subscribe(collect)

        def work(index):
            for _ in range(self.PER_THREAD):
                bus.emit("tick", worker=index)

        self._hammer(work)
        assert len(seen) == self.THREADS * self.PER_THREAD


class TestNullEventBus:
    def test_disabled_and_silent(self):
        bus = NullEventBus()
        assert not bus.enabled
        bus.emit("anything", x=1)
        bus.heartbeat()
        bus.close()


class TestOpenEventStream:
    def test_none_gives_sinkless_live_bus(self):
        bus = open_event_stream(None)
        assert bus.enabled
        bus.emit("x")  # no sink: subscriber-only, must not raise

    def test_dash_streams_to_stderr(self, capsys):
        bus = open_event_stream("-")
        bus.emit("run_start", kind="fleet")
        bus.close()
        record = json.loads(capsys.readouterr().err.strip())
        assert record["event"] == "run_start"

    def test_path_owns_the_file(self, tmp_path):
        target = tmp_path / "events.ndjson"
        bus = open_event_stream(str(target))
        bus.emit("run_start")
        bus.emit("run_end")
        bus.close()
        lines = target.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["event"] == "run_end"

    def test_file_bus_exposes_its_path(self, tmp_path):
        target = tmp_path / "events.ndjson"
        bus = open_event_stream(str(target))
        assert bus.path == str(target)
        bus.close()
        assert open_event_stream(None).path is None
        dash = open_event_stream("-")
        assert dash.path is None  # stderr has no shareable path

    def test_fresh_open_truncates_but_append_joins(self, tmp_path):
        target = tmp_path / "events.ndjson"
        first = open_event_stream(str(target))
        first.emit("old_run")
        first.close()
        parent = open_event_stream(str(target))       # truncates
        parent.emit("run_start")
        worker = open_event_stream(str(target), append=True)
        worker.emit("heartbeat", kind="worker", shard=0)
        worker.close()
        parent.emit("run_end")                        # must not clobber
        parent.close()
        events = [json.loads(line)["event"]
                  for line in target.read_text().splitlines()]
        assert "old_run" not in events
        assert sorted(events) == ["heartbeat", "run_end", "run_start"]


class TestProcessStats:
    def test_returns_numeric_fields(self):
        stats = process_stats()
        assert stats  # Linux container: /proc/self must be readable
        for value in stats.values():
            assert isinstance(value, (int, float))

    def test_reports_current_and_peak_rss_separately(self):
        stats = process_stats()
        assert set(stats) == {"rss_bytes", "rss_peak_bytes", "cpu_seconds"}
        # On the Linux path both are live; the peak can never be below
        # the current reading when both are known.
        if stats["rss_bytes"] and stats["rss_peak_bytes"]:
            assert stats["rss_peak_bytes"] >= stats["rss_bytes"]

    def test_fallback_path_never_calls_peak_current(self, monkeypatch):
        import builtins

        real_open = builtins.open

        def no_proc(path, *args, **kwargs):
            if isinstance(path, str) and path.startswith("/proc/self/"):
                raise OSError("no /proc on this platform")
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", no_proc)
        stats = process_stats()
        # getrusage's ru_maxrss is a *peak*: it must land in
        # rss_peak_bytes and current rss must stay unknown (0.0).
        assert stats["rss_bytes"] == 0.0
        assert stats["rss_peak_bytes"] > 0.0
        assert stats["cpu_seconds"] > 0.0
