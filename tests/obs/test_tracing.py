"""Unit tests for span tracing: nesting, two clocks, exports."""

import json

import pytest

from repro.obs import NullTracer, Tracer
from repro.simnet.simulator import Simulator


class FakeClock:
    """A controllable wall clock."""

    def __init__(self):
        self.value = 0.0

    def __call__(self):
        return self.value

    def advance(self, delta):
        self.value += delta


class TestSpanNesting:
    def test_parent_child_tree(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child_a") as child_a:
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert [root.name for root in tracer.roots] == ["parent"]
        assert [child.name for child in parent.children] == ["child_a", "child_b"]
        assert [span.name for span in child_a.children] == ["grandchild"]
        assert [span.name for span in tracer.iter_spans()] == [
            "parent", "child_a", "grandchild", "child_b"]

    def test_current_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_error_marks_status_and_closes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        span = tracer.roots[0]
        assert span.status == "error"
        assert span.wall_end is not None

    def test_attrs_and_find(self):
        tracer = Tracer()
        with tracer.span("stage", stage="scan") as span:
            span.set_attr("hosts", 93)
        assert tracer.find("stage")[0].attrs == {"stage": "scan", "hosts": 93}
        assert tracer.find("missing") == []


class TestTwoClocks:
    def test_sim_and_wall_durations(self):
        sim = Simulator()
        wall = FakeClock()
        tracer = Tracer(sim_clock=lambda: sim.now, wall_clock=wall)
        with tracer.span("run") as span:
            sim.schedule(30.0, lambda: None)
            sim.run()
            wall.advance(0.25)
        assert span.sim_duration == 30.0
        assert span.wall_duration == 0.25

    def test_sim_clock_late_binding(self):
        tracer = Tracer()
        with tracer.span("before") as span:
            pass
        assert span.sim_start is None and span.sim_duration is None
        sim = Simulator(start_time=5.0)
        tracer.set_sim_clock(lambda: sim.now)
        with tracer.span("after") as span:
            pass
        assert span.sim_start == 5.0
        assert span.sim_duration == 0.0


class TestExport:
    def _traced(self):
        sim = Simulator()
        wall = FakeClock()
        tracer = Tracer(sim_clock=lambda: sim.now, wall_clock=wall)
        with tracer.span("pipeline", seed=7):
            with tracer.span("passive"):
                sim.schedule(10.0, lambda: None)
                sim.run()
                wall.advance(1.0)
            with tracer.span("scans"):
                wall.advance(2.0)
        return tracer

    def test_tree_export_deterministic_without_wall(self):
        # Same sim schedule, different wall clocks -> identical trees
        # once wall fields are excluded.
        a = self._traced().to_json(include_wall=False)
        b = self._traced().to_json(include_wall=False)
        assert a == b
        tree = json.loads(a)
        assert tree[0]["name"] == "pipeline"
        assert "wall_start" not in tree[0]
        assert tree[0]["children"][0]["sim_duration"] == 10.0

    def test_tree_export_includes_wall_by_default(self):
        tree = self._traced().to_tree()
        assert tree[0]["wall_duration"] == 3.0

    def test_chrome_trace_structure(self):
        trace = self._traced().to_chrome_trace()
        events = trace["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}
        passive = next(e for e in events if e["name"] == "passive")
        assert passive["dur"] == pytest.approx(1e6)  # 1 wall-second in µs
        assert passive["args"]["sim_start"] == 0.0
        assert passive["args"]["sim_end"] == 10.0

    def test_chrome_trace_file_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        self._traced().write_chrome_trace(path)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list) and data["traceEvents"]

    def test_json_file(self, tmp_path):
        path = tmp_path / "spans.json"
        self._traced().write_json(path)
        assert json.loads(path.read_text())[0]["name"] == "pipeline"


class TestNullTracer:
    def test_span_is_noop(self):
        tracer = NullTracer()
        with tracer.span("anything", key="value") as span:
            span.set_attr("ignored", 1)
        assert tracer.roots == []
        assert tracer.to_tree() == []
        assert tracer.to_chrome_trace()["traceEvents"] == []
        assert list(tracer.iter_spans()) == []
        assert tracer.current is None
        assert tracer.enabled is False


class TestThreadSafety:
    def test_worker_threads_have_independent_stacks(self):
        import threading

        tracer = Tracer()
        errors = []
        barrier = threading.Barrier(4)

        def worker(i):
            try:
                barrier.wait(timeout=5)
                for _ in range(50):
                    with tracer.span(f"worker-{i}") as outer:
                        with tracer.span(f"inner-{i}") as inner:
                            assert tracer.current is inner
                        assert tracer.current is outer
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Worker spans have no main-thread parent: they are all roots.
        assert len(tracer.roots) == 200
        assert all(len(root.children) == 1 for root in tracer.roots)

    def test_explicit_parent_attaches_cross_thread(self):
        import threading

        tracer = Tracer()
        with tracer.span("coordinator") as coordinator:
            def worker(i):
                with tracer.span(f"task-{i}", _parent=coordinator):
                    pass

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert [root.name for root in tracer.roots] == ["coordinator"]
        assert sorted(child.name for child in coordinator.children) == [
            "task-0", "task-1", "task-2"]
        # The workers' spans never leaked onto the main thread's stack.
        assert tracer.current is None

    def test_explicit_parent_same_thread_matches_implicit(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("explicit", _parent=outer):
                pass
            with tracer.span("implicit"):
                pass
        assert [child.name for child in outer.children] == ["explicit", "implicit"]


class TestSimClockBackfill:
    def test_clockless_open_backfills_at_close_when_clock_arrives(self):
        """A span opened before the sim clock exists (the pipeline's run
        and build spans) gets zero-width sim bounds once the clock is
        installed, instead of staying clockless."""
        tracer = Tracer()
        with tracer.span("build") as span:
            sim = Simulator(start_time=42.0)
            tracer.set_sim_clock(lambda: sim.now)
        assert span.sim_start == 42.0
        assert span.sim_end == 42.0
        assert span.sim_duration == 0.0

    def test_fully_clockless_span_stays_clockless(self):
        tracer = Tracer()
        with tracer.span("no-clock") as span:
            pass
        assert span.sim_start is None and span.sim_end is None
        assert span.sim_duration is None
