"""Tests for the perf-trajectory recorder and regression gate."""

import json

import pytest

from repro.obs.bench import (
    BenchEntry,
    BenchTrajectory,
    MEMORY_METRIC,
    SCHEMA_VERSION,
    check_regression,
    env_fingerprint,
)

FP_A = {"python": "3.11.0", "cpu_count": 4, "code_version": "aaaa"}
FP_B = {"python": "3.11.0", "cpu_count": 16, "code_version": "aaaa"}


def _trajectory(*values, fingerprints=None, metric="pps"):
    trajectory = BenchTrajectory(name="t", primary_metric=metric)
    fingerprints = fingerprints or [FP_A] * len(values)
    for index, value in enumerate(values):
        trajectory.append(BenchEntry(
            date=f"2026-01-{index + 1:02d}",
            fingerprint=dict(fingerprints[index]),
            metrics={metric: float(value)},
        ))
    return trajectory


class TestEnvFingerprint:
    def test_stable_and_complete(self):
        fingerprint = env_fingerprint()
        assert fingerprint == env_fingerprint()
        for key in ("python", "implementation", "platform", "machine",
                    "cpu_count", "code_version"):
            assert key in fingerprint

    def test_code_version_matches_fleet(self):
        from repro.fleet.spec import code_version

        assert env_fingerprint()["code_version"] == code_version()


class TestTrajectoryFile:
    def test_save_load_round_trip(self, tmp_path):
        trajectory = _trajectory(100.0, 110.0)
        path = trajectory.save(tmp_path / "BENCH_t.json")
        loaded = BenchTrajectory.load(path)
        assert loaded.to_dict() == trajectory.to_dict()
        assert loaded.primary_metric == "pps"
        assert len(loaded.entries) == 2

    def test_missing_file_loads_empty(self, tmp_path):
        trajectory = BenchTrajectory.load(tmp_path / "absent.json",
                                          name="x", primary_metric="pps")
        assert trajectory.entries == []
        assert trajectory.name == "x"

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            BenchTrajectory.load(path)

    def test_save_is_atomic_no_temp_left_behind(self, tmp_path):
        trajectory = _trajectory(1.0)
        trajectory.save(tmp_path / "BENCH_t.json")
        trajectory.save()  # second save reuses the stored path
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_t.json"]


class TestRegressionGate:
    def test_empty_trajectory_fails(self):
        verdict = check_regression(_trajectory())
        assert not verdict.ok
        assert "no entries" in verdict.detail

    def test_first_entry_seeds_and_passes(self):
        verdict = check_regression(_trajectory(100.0))
        assert verdict.ok
        assert "seeds" in verdict.detail

    def test_within_tolerance_passes(self):
        # median of [100, 120, 110] = 110; 90 > 110 * 0.75
        verdict = check_regression(_trajectory(100.0, 120.0, 110.0, 90.0))
        assert verdict.ok
        assert verdict.baseline == 110.0

    def test_regression_beyond_tolerance_fails(self):
        verdict = check_regression(_trajectory(100.0, 120.0, 110.0, 70.0))
        assert not verdict.ok
        assert "REGRESSION" in verdict.detail

    def test_only_same_fingerprint_history_counts(self):
        # Fast-machine history must not fail a slow machine's entry.
        trajectory = _trajectory(
            500.0, 520.0, 100.0,
            fingerprints=[FP_B, FP_B, FP_A])
        verdict = check_regression(trajectory)
        assert verdict.ok
        assert "seeds" in verdict.detail

    def test_lower_is_better_direction(self):
        trajectory = _trajectory(10.0, 10.0, 14.0)
        trajectory.higher_is_better = False
        verdict = check_regression(trajectory)
        assert not verdict.ok

    def test_missing_primary_metric_fails(self):
        trajectory = _trajectory(1.0)
        trajectory.primary_metric = "elsewhere"
        assert not check_regression(trajectory).ok


class TestMemoryGate:
    def _with_memory(self, *rss_values, pps=100.0):
        trajectory = _trajectory(*([pps] * len(rss_values)))
        for entry, rss in zip(trajectory.entries, rss_values):
            if rss is not None:
                entry.metrics[MEMORY_METRIC] = float(rss)
        return trajectory

    def test_memory_growth_within_tolerance_passes(self):
        # median 1000; 1400 < 1000 * 1.5
        verdict = check_regression(self._with_memory(1000.0, 1000.0, 1400.0))
        assert verdict.ok

    def test_memory_growth_beyond_tolerance_fails(self):
        verdict = check_regression(self._with_memory(1000.0, 1000.0, 1600.0))
        assert not verdict.ok
        assert "MEMORY REGRESSION" in verdict.detail
        assert "time leg ok" in verdict.detail

    def test_memory_shrink_always_passes(self):
        # Lower-is-better: halving the peak is a win, not a regression.
        verdict = check_regression(self._with_memory(1000.0, 1000.0, 100.0))
        assert verdict.ok

    def test_pre_column_history_is_skipped(self):
        # Entries recorded before the column existed must not fail it.
        verdict = check_regression(self._with_memory(None, None, 1600.0))
        assert verdict.ok

    def test_entry_without_column_is_skipped(self):
        verdict = check_regression(self._with_memory(1000.0, 1000.0, None))
        assert verdict.ok

    def test_memory_leg_only_runs_after_time_leg_passes(self):
        trajectory = self._with_memory(1000.0, 1000.0, 9000.0)
        trajectory.entries[-1].metrics["pps"] = 10.0  # time leg fails first
        verdict = check_regression(trajectory)
        assert not verdict.ok
        assert "MEMORY" not in verdict.detail

    def test_custom_memory_tolerance(self):
        trajectory = self._with_memory(1000.0, 1000.0, 1400.0)
        assert not check_regression(trajectory, memory_tolerance=0.1).ok


class TestSecondaryGate:
    def _with_columnar(self, *columnar_values, pps=100.0):
        trajectory = _trajectory(*([pps] * len(columnar_values)))
        for entry, value in zip(trajectory.entries, columnar_values):
            if value is not None:
                entry.metrics["columnar_pps"] = float(value)
        return trajectory

    def test_secondary_within_tolerance_passes(self):
        # median 1000; 800 > 1000 * 0.75
        trajectory = self._with_columnar(1000.0, 1000.0, 800.0)
        verdict = check_regression(trajectory,
                                   secondary_metrics=("columnar_pps",))
        assert verdict.ok

    def test_secondary_beyond_tolerance_fails(self):
        trajectory = self._with_columnar(1000.0, 1000.0, 600.0)
        verdict = check_regression(trajectory,
                                   secondary_metrics=("columnar_pps",))
        assert not verdict.ok
        assert "SECONDARY REGRESSION" in verdict.detail
        assert "columnar_pps" in verdict.detail
        assert "primary leg ok" in verdict.detail

    def test_secondary_growth_always_passes(self):
        # Higher-is-better: a throughput jump is a win.
        trajectory = self._with_columnar(1000.0, 1000.0, 5000.0)
        assert check_regression(trajectory,
                                secondary_metrics=("columnar_pps",)).ok

    def test_pre_column_history_is_skipped(self):
        # Entries recorded before the columnar store existed must not
        # fail the first entry that carries the column — it seeds.
        trajectory = self._with_columnar(None, None, 900.0)
        assert check_regression(trajectory,
                                secondary_metrics=("columnar_pps",)).ok

    def test_entry_without_column_is_skipped(self):
        trajectory = self._with_columnar(1000.0, 1000.0, None)
        assert check_regression(trajectory,
                                secondary_metrics=("columnar_pps",)).ok

    def test_unlisted_metric_not_gated(self):
        # Without the metric in secondary_metrics the drop is ignored.
        trajectory = self._with_columnar(1000.0, 1000.0, 100.0)
        assert check_regression(trajectory).ok

    def test_decode_file_mapping_names_columnar_throughput(self):
        from repro.obs.bench import SECONDARY_METRICS

        assert "columnar_packets_per_second" in SECONDARY_METRICS[
            "BENCH_decode.json"]


class TestCheckerScript:
    def test_repo_trajectories_pass_the_gate(self):
        """The committed BENCH_*.json seeds must satisfy the CI gate."""
        import importlib.util
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        spec = importlib.util.spec_from_file_location(
            "check_bench_regression",
            repo / "tools" / "check_bench_regression.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main([]) == 0
