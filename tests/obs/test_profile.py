"""Tests for continuous profiling (``repro.obs.profile``)."""

import json
import sys
import threading
import time

import pytest

from repro.obs.profile import (
    DEFAULT_PROFILE_HZ,
    FLAMEGRAPH_NAME,
    MAX_STACK_DEPTH,
    NULL_PROFILER,
    PROFILE_SCHEMA_VERSION,
    RESOURCE_ATTRS,
    RESOURCES_NAME,
    SPEEDSCOPE_NAME,
    UNATTRIBUTED,
    NullProfiler,
    Profile,
    ProfileError,
    SamplingProfiler,
    SpanResourceProbe,
    collect_stack,
    span_resource_table,
    write_profile_outputs,
)
from repro.obs.tracing import Tracer


def _sample_profile() -> Profile:
    profile = Profile(hz=97.0)
    profile.record("decode", ["a.py:main", "a.py:decode"])
    profile.record("decode", ["a.py:main", "a.py:decode"])
    profile.record("decode", ["a.py:main", "a.py:parse"])
    profile.record("analyze", ["a.py:main", "b.py:analyze"])
    return profile


class TestProfile:
    def test_record_accumulates_per_span_stacks(self):
        profile = _sample_profile()
        assert profile.total_samples == 4
        assert profile.span_sample_counts() == {"analyze": 1, "decode": 3}
        assert profile.samples["decode"]["a.py:main;a.py:decode"] == 2

    def test_record_buckets_unattributed_and_idle(self):
        profile = Profile()
        profile.record(None, ["x.py:f"])
        profile.record("spanned", [])
        assert profile.samples[UNATTRIBUTED] == {"x.py:f": 1}
        assert profile.samples["spanned"] == {"(idle)": 1}

    def test_merge_is_additive(self):
        left = _sample_profile()
        right = Profile(hz=97.0)
        right.record("decode", ["a.py:main", "a.py:decode"])
        right.record("scan", ["c.py:sweep"])
        left.merge(right)
        assert left.samples["decode"]["a.py:main;a.py:decode"] == 3
        assert left.samples["scan"] == {"c.py:sweep": 1}

    def test_merge_is_order_insensitive(self):
        parts = [_sample_profile(), Profile(hz=97.0), _sample_profile()]
        parts[1].record("scan", ["c.py:sweep"])
        forward = Profile()
        for part in parts:
            forward.merge(Profile.from_dict(part.to_dict()))
        backward = Profile()
        for part in reversed(parts):
            backward.merge(Profile.from_dict(part.to_dict()))
        assert forward.to_dict() == backward.to_dict()

    def test_merge_adopts_hz_from_first_nonzero(self):
        empty = Profile()
        empty.merge(_sample_profile())
        assert empty.hz == 97.0

    def test_roundtrip_through_dict(self):
        profile = _sample_profile()
        clone = Profile.from_dict(profile.to_dict())
        assert clone.to_dict() == profile.to_dict()
        assert clone.hz == 97.0

    def test_from_dict_rejects_wrong_schema(self):
        raw = _sample_profile().to_dict()
        raw["schema"] = PROFILE_SCHEMA_VERSION + 1
        with pytest.raises(ProfileError):
            Profile.from_dict(raw)
        with pytest.raises(ProfileError):
            Profile.from_dict("not a mapping")
        with pytest.raises(ProfileError):
            Profile.from_dict({"schema": PROFILE_SCHEMA_VERSION,
                               "samples": "nope"})

    def test_collapsed_output_is_flamegraph_input(self):
        text = _sample_profile().to_collapsed()
        lines = text.splitlines()
        assert "decode;a.py:main;a.py:decode 2" in lines
        assert "analyze;a.py:main;b.py:analyze 1" in lines
        assert text.endswith("\n")
        assert Profile().to_collapsed() == ""

    def test_collapsed_output_is_deterministic(self):
        one = _sample_profile()
        two = Profile()
        # Insert in a different order; the export sorts.
        two.record("analyze", ["a.py:main", "b.py:analyze"])
        two.record("decode", ["a.py:main", "a.py:parse"])
        two.record("decode", ["a.py:main", "a.py:decode"])
        two.record("decode", ["a.py:main", "a.py:decode"])
        assert one.to_collapsed() == two.to_collapsed()

    def test_speedscope_export_shape(self):
        doc = _sample_profile().to_speedscope(name="testrun")
        assert doc["name"] == "testrun"
        assert doc["$schema"].startswith("https://www.speedscope.app")
        names = [p["name"] for p in doc["profiles"]]
        assert names == ["analyze", "decode"]
        frames = [f["name"] for f in doc["shared"]["frames"]]
        decode_profile = doc["profiles"][1]
        assert sum(decode_profile["weights"]) == 3
        assert decode_profile["endValue"] == 3
        for sample in decode_profile["samples"]:
            for frame_index in sample:
                assert 0 <= frame_index < len(frames)
        # Shared frame table: every label appears exactly once.
        assert len(frames) == len(set(frames))
        json.dumps(doc)  # must be JSON-able as-is

    def test_top_frames_self_vs_inclusive(self):
        rows = _sample_profile().top_frames(top=10)
        by_frame = {frame: (self_count, incl) for frame, self_count, incl in rows}
        assert by_frame["a.py:decode"] == (2, 2)
        assert by_frame["a.py:main"] == (0, 4)      # never the leaf
        assert rows[0][0] == "a.py:decode"          # highest self first

    def test_top_frames_span_filter_and_limit(self):
        rows = _sample_profile().top_frames(span="analyze", top=1)
        assert rows == [("b.py:analyze", 1, 1)]

    def test_top_frames_deduplicates_recursion(self):
        profile = Profile()
        profile.record("r", ["f.py:rec", "f.py:rec", "f.py:rec"])
        rows = profile.top_frames()
        assert rows == [("f.py:rec", 1, 1)]


class TestCollectStack:
    def test_root_first_order(self):
        def inner():
            return collect_stack(sys._getframe())

        stack = inner()
        assert stack[-1].endswith(":inner")
        assert any(label.endswith(":test_root_first_order") for label in stack)
        assert stack.index(
            next(l for l in stack if l.endswith(":test_root_first_order"))
        ) < len(stack) - 1

    def test_depth_overflow_marks_truncation(self):
        def recurse(depth):
            if depth == 0:
                return collect_stack(sys._getframe(), max_depth=5)
            return recurse(depth - 1)

        stack = recurse(20)
        assert stack[0] == "(truncated)"
        assert len(stack) == 6  # 5 frames + marker

    def test_default_depth_is_bounded(self):
        assert MAX_STACK_DEPTH >= 32


class TestSamplingProfiler:
    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=-5)

    def test_default_hz_is_prime_ish(self):
        assert SamplingProfiler().hz == DEFAULT_PROFILE_HZ

    def test_sample_once_attributes_to_another_threads_span(self):
        tracer = Tracer()
        profiler = SamplingProfiler(hz=50.0, tracer=tracer)
        ready = threading.Event()
        done = threading.Event()

        def worker():
            with tracer.span("busy.section"):
                ready.set()
                done.wait(timeout=5.0)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert ready.wait(timeout=5.0)
            recorded = profiler.sample_once()
        finally:
            done.set()
            thread.join()
        assert recorded >= 1
        assert "busy.section" in profiler.profile.samples

    def test_sample_once_skips_the_calling_thread_itself(self):
        profiler = SamplingProfiler(hz=50.0)
        profiler.sample_once()
        # Only this thread exists (pytest main): nothing recorded.
        for stacks in profiler.profile.samples.values():
            for stack in stacks:
                assert "sample_once" not in stack

    def test_start_stop_lifecycle(self):
        profiler = SamplingProfiler(hz=200.0)
        assert not profiler.running
        profiler.start()
        profiler.start()  # idempotent
        assert profiler.running
        deadline = time.time() + 5.0
        while profiler.profile.total_samples == 0 and time.time() < deadline:
            time.sleep(0.01)
        profiler.stop()
        assert not profiler.running
        profiler.stop()  # idempotent
        assert profiler.profile.total_samples > 0

    def test_sampler_thread_excludes_itself(self):
        profiler = SamplingProfiler(hz=500.0)
        profiler.start()
        time.sleep(0.05)
        profiler.stop()
        for stacks in profiler.profile.samples.values():
            for stack in stacks:
                assert "profile.py:_run" not in stack

    def test_snapshot_none_when_empty_else_payload(self):
        profiler = SamplingProfiler(hz=97.0)
        assert profiler.snapshot() is None
        profiler.profile.record("s", ["x.py:f"])
        snap = profiler.snapshot()
        assert snap["schema"] == PROFILE_SCHEMA_VERSION
        assert snap["samples"]["s"]["x.py:f"] == 1

    def test_merge_folds_serialized_profiles(self):
        profiler = SamplingProfiler(hz=97.0)
        profiler.merge(_sample_profile().to_dict())
        profiler.merge(_sample_profile().to_dict())
        assert profiler.profile.samples["decode"]["a.py:main;a.py:decode"] == 4

    def test_bind_attaches_tracer_late(self):
        profiler = SamplingProfiler(hz=97.0)
        tracer = Tracer()
        profiler.bind(tracer)
        assert profiler.tracer is tracer


class TestNullProfiler:
    def test_is_inert(self):
        null = NullProfiler()
        assert not null.enabled and not null.running
        null.bind(object())
        null.start()
        assert null.sample_once() == 0
        null.merge({"schema": 1})
        assert null.snapshot() is None
        null.stop()
        assert NULL_PROFILER.enabled is False


class TestSpanResourceProbe:
    def test_records_cpu_and_gc_attrs_on_spans(self):
        tracer = Tracer()
        tracer.resource_probe = SpanResourceProbe(malloc=False)
        with tracer.span("work") as span:
            sum(i * i for i in range(50_000))
        assert span.attrs["cpu_seconds"] >= 0.0
        assert span.attrs["gc_collections"] >= 0
        assert "mem_alloc_bytes" not in span.attrs  # malloc off

    def test_malloc_opt_in_records_alloc_and_peak(self):
        tracer = Tracer()
        probe = SpanResourceProbe(malloc=True)
        tracer.resource_probe = probe
        try:
            with tracer.span("alloc") as span:
                blob = [bytes(1000) for _ in range(1000)]
                del blob
            assert "mem_alloc_bytes" in span.attrs
            assert span.attrs["mem_peak_bytes"] > 0
        finally:
            probe.close()

    def test_close_stops_tracemalloc_it_started(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        probe = SpanResourceProbe(malloc=True)
        assert tracemalloc.is_tracing()
        probe.close()
        assert not tracemalloc.is_tracing()
        probe.close()  # idempotent

    def test_env_var_enables_malloc(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_MALLOC", "1")
        probe = SpanResourceProbe()
        try:
            assert probe.malloc
        finally:
            probe.close()
        monkeypatch.setenv("REPRO_PROFILE_MALLOC", "off")
        assert not SpanResourceProbe().malloc

    def test_no_probe_means_no_resource_attrs(self):
        tracer = Tracer()  # resource_probe stays None
        with tracer.span("clean") as span:
            pass
        for attr in RESOURCE_ATTRS:
            assert attr not in span.attrs


class TestSpanResourceTable:
    def test_aggregates_sums_and_peak_max(self):
        tracer = Tracer()
        tracer.resource_probe = SpanResourceProbe(malloc=False)
        for _ in range(3):
            with tracer.span("stage.work"):
                pass
        with tracer.span("stage.other"):
            pass
        table = span_resource_table(tracer)
        assert table["stage.work"]["count"] == 3
        assert table["stage.other"]["count"] == 1
        assert table["stage.work"]["wall_seconds"] >= 0.0
        assert list(table) == sorted(table)

    def test_peak_is_max_not_sum(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            span.set_attr("mem_peak_bytes", 100)
        with tracer.span("a") as span:
            span.set_attr("mem_peak_bytes", 40)
        assert span_resource_table(tracer)["a"]["mem_peak_bytes"] == 100


class TestWriteProfileOutputs:
    def test_writes_flame_speedscope_and_resources(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        out = tmp_path / "profile"
        written = write_profile_outputs(_sample_profile(), out, tracer=tracer)
        names = [path.name for path in written]
        assert names == [FLAMEGRAPH_NAME, SPEEDSCOPE_NAME, RESOURCES_NAME]
        flame = (out / FLAMEGRAPH_NAME).read_text()
        assert "decode;a.py:main;a.py:decode 2" in flame
        doc = json.loads((out / SPEEDSCOPE_NAME).read_text())
        assert doc["exporter"] == "repro.obs.profile"
        resources = json.loads((out / RESOURCES_NAME).read_text())
        assert "s" in resources

    def test_no_tracer_skips_resources_file(self, tmp_path):
        written = write_profile_outputs(_sample_profile(), tmp_path)
        assert [path.name for path in written] == [FLAMEGRAPH_NAME,
                                                   SPEEDSCOPE_NAME]
        assert not (tmp_path / RESOURCES_NAME).exists()
