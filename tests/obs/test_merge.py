"""Tests for cross-process telemetry merge: registry merge + snapshots.

The fleet's whole-run telemetry rests on ``MetricsRegistry.merge``
being an *exact additive* merge — these tests pin the algebra
(associative, commutative over counters/histograms, empty-registry
identity) and the conflict rules, then cover the ``ObsSnapshot``
envelope workers ship their telemetry home in.
"""

import math

import pytest

from repro.obs import (
    MetricsRegistry,
    ObsSnapshot,
    ObsSnapshotError,
    Tracer,
)
from repro.obs.context import Observability
from repro.obs.logging import NullLogManager


def _registry_a() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("packets_total", "frames seen")
    counter.inc(7, protocol="mdns")
    counter.inc(3, protocol="arp")
    registry.gauge("depth").set(4)
    hist = registry.histogram("lat", buckets=(0.1, 1.0))
    hist.observe(0.05, stage="build")
    hist.observe(0.5, stage="build")
    hist.observe(2.0, stage="scan")
    return registry


def _registry_b() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("packets_total", "frames seen")
    counter.inc(5, protocol="mdns")
    counter.inc(1, protocol="ssdp")
    registry.gauge("depth").set(9)
    hist = registry.histogram("lat", buckets=(0.1, 1.0))
    hist.observe(0.01, stage="build")
    return registry


def _counter_samples(registry: MetricsRegistry, name: str):
    return {tuple(sorted(s["labels"].items())): s["value"]
            for s in registry.to_dict()[name]["samples"]}


class TestMergeAlgebra:
    def test_counters_add_per_label_set(self):
        merged = _registry_a()
        merged.merge(_registry_b())
        samples = _counter_samples(merged, "packets_total")
        assert samples[(("protocol", "mdns"),)] == 12
        assert samples[(("protocol", "arp"),)] == 3
        assert samples[(("protocol", "ssdp"),)] == 1

    def test_histograms_add_bucket_counts_and_sums(self):
        merged = _registry_a()
        merged.merge(_registry_b())
        hist = merged.get("lat")
        assert hist.count(stage="build") == 3
        assert hist.sum(stage="build") == pytest.approx(0.56)
        assert hist.cumulative_buckets(stage="build") == [
            (0.1, 2), (1.0, 3), (math.inf, 3)]
        assert hist.count(stage="scan") == 1

    def test_gauges_last_write_wins(self):
        merged = _registry_a()
        merged.merge(_registry_b())
        assert merged.get("depth").value() == 9

    def test_identity_empty_registry(self):
        merged = _registry_a()
        merged.merge(MetricsRegistry())
        assert merged.to_dict() == _registry_a().to_dict()
        empty = MetricsRegistry()
        empty.merge(_registry_a())
        assert empty.to_dict() == _registry_a().to_dict()

    def test_commutative_over_counters_and_histograms(self):
        ab = _registry_a()
        ab.merge(_registry_b())
        ba = _registry_b()
        ba.merge(_registry_a())
        a_dict, b_dict = ab.to_dict(), ba.to_dict()
        for name in ("packets_total", "lat"):
            assert a_dict[name] == b_dict[name]
        # The gauge is the one deliberate exception: last write wins.
        assert a_dict["depth"] != b_dict["depth"]

    def test_associative(self):
        def registry_c():
            registry = MetricsRegistry()
            registry.counter("packets_total").inc(100, protocol="arp")
            hist = registry.histogram("lat", buckets=(0.1, 1.0))
            hist.observe(0.2, stage="build")
            return registry

        left = _registry_a()
        bc = _registry_b()
        bc.merge(registry_c())
        left.merge(bc)

        right = _registry_a()
        right.merge(_registry_b())
        right.merge(registry_c())
        assert left.to_dict() == right.to_dict()

    def test_round_trip_then_merge_matches_direct_merge(self):
        """Serialize -> from_dict -> merge equals merging the original."""
        direct = _registry_a()
        direct.merge(_registry_b())
        shipped = _registry_a()
        shipped.merge(MetricsRegistry.from_dict(_registry_b().to_dict()))
        assert shipped.to_dict() == direct.to_dict()


class TestMergeConflicts:
    def test_kind_mismatch_rejected(self):
        ours = MetricsRegistry()
        ours.counter("x")
        theirs = MetricsRegistry()
        theirs.gauge("x")
        with pytest.raises(ValueError, match="counter != gauge"):
            ours.merge(theirs)

    def test_bucket_mismatch_rejected(self):
        ours = MetricsRegistry()
        ours.histogram("h", buckets=(1.0, 2.0))
        theirs = MetricsRegistry()
        theirs.histogram("h", buckets=(1.0, 4.0))
        with pytest.raises(ValueError, match="bucket"):
            ours.merge(theirs)

    def test_missing_families_are_created(self):
        ours = MetricsRegistry()
        theirs = _registry_a()
        ours.merge(theirs)
        assert ours.to_dict() == theirs.to_dict()


class TestMergeExtraLabels:
    def test_extra_labels_stamped_on_incoming_samples(self):
        ours = MetricsRegistry()
        ours.counter("packets_total").inc(2, protocol="mdns")
        theirs = MetricsRegistry()
        theirs.counter("packets_total").inc(5, protocol="mdns")
        ours.merge(theirs, extra_labels={"from_cache": "true"})
        samples = _counter_samples(ours, "packets_total")
        assert samples[(("protocol", "mdns"),)] == 2
        assert samples[(("from_cache", "true"), ("protocol", "mdns"))] == 5


class TestObsSnapshot:
    def _worker_obs(self) -> Observability:
        obs = Observability(metrics=MetricsRegistry(), tracer=Tracer(),
                            logs=NullLogManager(), enabled=True)
        obs.metrics.counter("widgets_total").inc(4, kind="lamp")
        with obs.tracer.span("work"):
            pass
        return obs

    def test_capture_apply_round_trip(self):
        snapshot = ObsSnapshot.capture(self._worker_obs(),
                                       fault_counts={"loss": 3})
        rebuilt = ObsSnapshot.from_dict(snapshot.to_dict())
        parent = self._worker_obs()
        rebuilt.apply(parent)
        assert parent.metrics.get("widgets_total").value(kind="lamp") == 8
        assert parent.metrics.get("faults_injected_total").value(kind="loss") == 3
        assert sum(1 for root in parent.tracer.to_tree()
                   if root["name"] == "work") == 2

    def test_apply_with_from_cache_label(self):
        snapshot = ObsSnapshot.capture(self._worker_obs())
        parent = Observability(metrics=MetricsRegistry(), tracer=Tracer(),
                               logs=NullLogManager(), enabled=True)
        snapshot.apply(parent, extra_labels={"from_cache": "true"})
        value = parent.metrics.get("widgets_total").value(
            kind="lamp", from_cache="true")
        assert value == 4

    def test_wrong_schema_rejected(self):
        raw = ObsSnapshot.capture(self._worker_obs()).to_dict()
        raw["schema"] = 99
        with pytest.raises(ObsSnapshotError):
            ObsSnapshot.from_dict(raw)

    def test_empty_snapshot(self):
        obs = Observability(metrics=MetricsRegistry(), tracer=Tracer(),
                            logs=NullLogManager(), enabled=True)
        assert ObsSnapshot.capture(obs).is_empty
        assert not ObsSnapshot.capture(self._worker_obs()).is_empty

    def test_unprofiled_snapshot_bytes_omit_the_profile_key(self):
        snapshot = ObsSnapshot.capture(self._worker_obs())
        assert snapshot.profile is None
        raw = snapshot.to_dict()
        assert "profile" not in raw
        assert ObsSnapshot.from_dict(raw).profile is None

    def _profiled_obs(self) -> Observability:
        from repro.obs.profile import SamplingProfiler

        obs = Observability(metrics=MetricsRegistry(), tracer=Tracer(),
                            logs=NullLogManager(), enabled=True,
                            profiler=SamplingProfiler(hz=97.0))
        obs.profiler.profile.record("work", ["a.py:f", "a.py:g"])
        with obs.tracer.span("work"):
            pass
        return obs

    def test_profiled_snapshot_round_trips_and_merges(self):
        snapshot = ObsSnapshot.capture(self._profiled_obs())
        raw = snapshot.to_dict()
        assert raw["profile"]["samples"]["work"]["a.py:f;a.py:g"] == 1
        rebuilt = ObsSnapshot.from_dict(raw)
        assert not rebuilt.is_empty
        parent = self._profiled_obs()
        rebuilt.apply(parent)
        assert parent.profiler.profile.samples["work"]["a.py:f;a.py:g"] == 2

    def test_profile_apply_skips_disabled_parent_profiler(self):
        snapshot = ObsSnapshot.capture(self._profiled_obs())
        parent = Observability(metrics=MetricsRegistry(), tracer=Tracer(),
                               logs=NullLogManager(), enabled=True)
        snapshot.apply(parent)  # NULL_PROFILER target: ignored, no crash
        assert parent.profiler.snapshot() is None
