"""Unit tests for the structured logger."""

import io
import json

import pytest

from repro.obs.logging import LogManager, NullLogManager, NullLogger


def manager_with_buffer(**kwargs):
    buffer = io.StringIO()
    return LogManager(stream=buffer, **kwargs), buffer


class TestLevels:
    def test_default_level_filters(self):
        manager, buffer = manager_with_buffer(default_level="warning")
        logger = manager.logger("sim")
        logger.info("ignored")
        logger.warning("kept")
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 1 and "kept" in lines[0]

    def test_per_subsystem_override(self):
        manager, buffer = manager_with_buffer(default_level="warning")
        manager.set_level("debug", "scan")
        manager.logger("scan").debug("scan_detail")
        manager.logger("sim").debug("sim_detail")
        output = buffer.getvalue()
        assert "scan_detail" in output and "sim_detail" not in output

    def test_is_enabled(self):
        manager, _ = manager_with_buffer(default_level="info")
        assert manager.logger("x").is_enabled("error")
        assert not manager.logger("x").is_enabled("debug")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            LogManager(default_level="chatty")

    def test_off_silences_everything(self):
        manager, buffer = manager_with_buffer(default_level="off")
        manager.logger("sim").error("even_errors")
        assert buffer.getvalue() == ""


class TestFormats:
    def test_kv_format(self):
        manager, buffer = manager_with_buffer(default_level="info", fmt="kv")
        manager.logger("scan").info("sweep_done", hosts=93, kind="tcp scan")
        line = buffer.getvalue().strip()
        assert line.startswith("INFO scan sweep_done")
        assert "hosts=93" in line
        assert 'kind="tcp scan"' in line  # values with spaces get quoted

    def test_json_format(self):
        manager, buffer = manager_with_buffer(default_level="info", fmt="json")
        manager.logger("scan").info("sweep_done", hosts=93)
        record = json.loads(buffer.getvalue())
        assert record == {"level": "info", "subsystem": "scan",
                          "event": "sweep_done", "hosts": 93}

    def test_sim_clock_timestamps(self):
        manager, buffer = manager_with_buffer(default_level="info", fmt="json")
        manager.clock = lambda: 123.456
        manager.logger("sim").info("tick")
        assert json.loads(buffer.getvalue())["sim_time"] == 123.456

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            LogManager(fmt="xml")


class TestEnvConfig:
    def test_from_env_levels(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
        monkeypatch.setenv("REPRO_LOG", "sim=debug, scan=info")
        manager = LogManager.from_env(stream=io.StringIO())
        assert manager.level_of("sim") == 10
        assert manager.level_of("scan") == 20
        assert manager.level_of("anything_else") == 40

    def test_explicit_level_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        manager = LogManager.from_env(default_level="error", stream=io.StringIO())
        assert manager.level_of("x") == 40


class TestNullBackend:
    def test_null_logger_noops(self):
        logger = NullLogManager().logger("sim")
        assert isinstance(logger, NullLogger)
        logger.debug("x", a=1)
        logger.info("x")
        logger.warning("x")
        logger.error("x")
        assert not logger.is_enabled("error")

    def test_null_manager_hands_out_singleton(self):
        manager = NullLogManager()
        assert manager.logger("a") is manager.logger("b")
        manager.set_level("debug")  # no-op, must not raise
