"""FaultPlan validation, JSON round-trips, and window semantics."""

import pytest

from repro.faults import (
    DISCOVERY_PORTS,
    EMPTY_PLAN,
    DelaySpec,
    DiscoveryMutation,
    FaultPlan,
    FlapWindow,
    LinkFaults,
    ShardFaults,
    UnresponsivePort,
)
from repro.faults.plan import FaultPlanError


FULL_PLAN = {
    "name": "lossy-lan",
    "seed_salt": 3,
    "links": [
        {"src": "*", "dst": "echo-1", "loss": 0.02, "duplicate": 0.01,
         "reorder": 0.01, "truncate": 0.005, "corrupt": 0.005,
         "corrupt_bits": 4,
         "delay": {"probability": 0.05, "min_seconds": 0.001, "max_seconds": 0.02}},
    ],
    "discovery": {"probability": 0.05, "protocols": ["mdns", "ssdp"]},
    "flaps": [{"device": "echo-1", "start": 120.0, "duration": 30.0, "period": 600.0}],
    "unresponsive_ports": [
        {"device": "*", "transport": "tcp", "port": 80, "start": 0.0, "duration": None},
    ],
}


class TestValidation:
    def test_full_plan_parses(self):
        plan = FaultPlan.from_dict(FULL_PLAN)
        assert plan.name == "lossy-lan"
        assert plan.seed_salt == 3
        assert plan.links[0].dst == "echo-1"
        assert plan.links[0].delay.max_seconds == 0.02
        assert plan.discovery.ports() == (5353, 1900)
        assert plan.flaps[0].period == 600.0
        assert plan.unresponsive_ports[0].duration is None
        assert not plan.is_empty

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown keys"):
            FaultPlan.from_dict({"name": "x", "typo_section": []})

    def test_unknown_link_key_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown keys"):
            FaultPlan.from_dict({"links": [{"src": "*", "los": 0.5}]})

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultPlanError, match="out of"):
            FaultPlan.from_dict({"links": [{"loss": 1.5}]})

    def test_non_numeric_probability_rejected(self):
        with pytest.raises(FaultPlanError, match="expected a number"):
            FaultPlan.from_dict({"links": [{"loss": "high"}]})

    def test_delay_min_above_max_rejected(self):
        with pytest.raises(FaultPlanError, match="min_seconds > max_seconds"):
            FaultPlan.from_dict({"links": [{"delay": {
                "probability": 0.1, "min_seconds": 0.1, "max_seconds": 0.01}}]})

    def test_unknown_discovery_protocol_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown protocol"):
            FaultPlan.from_dict({"discovery": {"probability": 0.1,
                                               "protocols": ["llmnr"]}})

    def test_flap_requires_device(self):
        with pytest.raises(FaultPlanError, match="'device' is required"):
            FaultPlan.from_dict({"flaps": [{"start": 0.0, "duration": 1.0}]})

    def test_flap_duration_must_fit_period(self):
        with pytest.raises(FaultPlanError, match="duration must be < period"):
            FaultPlan.from_dict({"flaps": [{"device": "x", "start": 0.0,
                                            "duration": 10.0, "period": 5.0}]})

    def test_bad_port_rejected(self):
        with pytest.raises(FaultPlanError, match="1..65535"):
            FaultPlan.from_dict({"unresponsive_ports": [
                {"device": "*", "transport": "tcp", "port": 0}]})

    def test_bad_transport_rejected(self):
        with pytest.raises(FaultPlanError, match="'tcp' or 'udp'"):
            FaultPlan.from_dict({"unresponsive_ports": [
                {"device": "*", "transport": "sctp", "port": 80}]})

    def test_invalid_json_wrapped(self):
        with pytest.raises(FaultPlanError, match="invalid JSON"):
            FaultPlan.from_json("{nope")

    def test_non_object_rejected(self):
        with pytest.raises(FaultPlanError, match="expected a JSON object"):
            FaultPlan.from_dict([1, 2, 3])


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        plan = FaultPlan.from_dict(FULL_PLAN)
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan.from_dict(FULL_PLAN).to_json())
        assert FaultPlan.load(path) == FaultPlan.from_dict(FULL_PLAN)


class TestEmptiness:
    def test_empty_plan_is_empty(self):
        assert EMPTY_PLAN.is_empty
        assert FaultPlan.from_dict({}).is_empty

    def test_noop_sections_stay_empty(self):
        plan = FaultPlan.from_dict({
            "links": [{"src": "*", "dst": "*", "loss": 0.0}],
            "discovery": {"probability": 0.0},
            "flaps": [{"device": "x", "start": 5.0, "duration": 0.0}],
        })
        assert plan.is_empty

    def test_any_live_section_makes_nonempty(self):
        assert not FaultPlan.from_dict({"links": [{"loss": 0.1}]}).is_empty
        assert not FaultPlan.from_dict(
            {"discovery": {"probability": 0.1}}).is_empty
        assert not FaultPlan.from_dict(
            {"flaps": [{"device": "x", "duration": 1.0}]}).is_empty
        assert not FaultPlan.from_dict({"unresponsive_ports": [
            {"device": "*", "transport": "udp", "port": 53}]}).is_empty


class TestWindows:
    def test_one_shot_flap_window(self):
        flap = FlapWindow(device="x", start=10.0, duration=5.0)
        assert not flap.covers(9.9)
        assert flap.covers(10.0)
        assert flap.covers(14.9)
        assert not flap.covers(15.0)

    def test_periodic_flap_window_repeats(self):
        flap = FlapWindow(device="x", start=10.0, duration=5.0, period=100.0)
        for base in (10.0, 110.0, 1010.0):
            assert flap.covers(base + 2.0)
            assert not flap.covers(base + 7.0)

    def test_unresponsive_port_windows(self):
        forever = UnresponsivePort(device="*", transport="tcp", port=80)
        assert forever.covers(0.0) and forever.covers(1e9)
        bounded = UnresponsivePort(device="*", transport="udp", port=53,
                                   start=10.0, duration=5.0)
        assert not bounded.covers(9.0)
        assert bounded.covers(12.0)
        assert not bounded.covers(15.0)

    def test_discovery_ports_table(self):
        assert DISCOVERY_PORTS["tuyalp"] == (6666, 6667)
        assert DiscoveryMutation(probability=0.1).ports() == (5353, 1900, 6666, 6667)


class TestShardWorkerFaults:
    """The ``shards`` section's hang/slow worker-fault kinds."""

    def test_hang_and_slow_round_trip(self):
        plan = FaultPlan.from_dict({"shards": {
            "hang": [2], "hang_seconds": 45.0,
            "slow": [0, 1], "slow_rate": 0.1, "slow_factor": 3.0}})
        assert plan.shards.hang == (2,)
        assert plan.shards.hang_seconds == 45.0
        assert plan.shards.slow == (0, 1)
        assert plan.shards.slow_factor == 3.0
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_hang_and_slow_make_the_section_live(self):
        assert ShardFaults().is_noop
        assert not ShardFaults(hang=(1,)).is_noop
        assert not ShardFaults(slow_rate=0.5).is_noop
        assert ShardFaults(hang=(1,)).has_hangs
        assert ShardFaults(hang_rate=0.2).has_hangs
        assert not ShardFaults(slow=(1,)).has_hangs
        plan = FaultPlan.from_dict({"shards": {"hang_rate": 0.5}})
        assert plan.has_shard_faults and plan.has_hang_faults
        assert plan.is_empty  # worker faults never touch the LAN

    def test_hang_seconds_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="hang_seconds"):
            FaultPlan.from_dict({"shards": {"hang": [1], "hang_seconds": 0}})

    def test_slow_factor_below_one_rejected(self):
        with pytest.raises(FaultPlanError, match="slow_factor"):
            FaultPlan.from_dict({"shards": {"slow": [1], "slow_factor": 0.5}})

    @pytest.mark.parametrize("raw", [
        {"shards": {"hang": "2"}},
        {"shards": {"hang": [-1]}},
        {"shards": {"slow": [1.5]}},
        {"shards": {"hang_rate": 2.0}},
        {"shards": {"slow_rate": -0.1}},
        {"shards": {"hnag": [1]}},
    ])
    def test_invalid_worker_fault_sections_rejected(self, raw):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict(raw)
