"""Deterministic mutation-fuzz over every guarded parser.

The corpus starts from one *valid* encoded message per protocol and
damages it with the fault framework's own byte mutators
(:mod:`repro.faults.mutators`), seeded — the same corpus every run.
The contract under test is the one ``repro.net.guard.guarded_decode``
enforces: a decoder either returns a message or raises ``ValueError``;
no ``struct.error`` / ``IndexError`` / ``KeyError`` /
``UnicodeDecodeError`` ever leaks to callers.  ``decode_frame`` goes
further: it never raises at all.
"""

import random

import pytest

from repro.faults.mutators import (
    corrupt_bits,
    mutate_discovery_payload,
    truncate_bytes,
)
from repro.net.arp import ArpOp, ArpPacket
from repro.net.decode import DecodeErrorLog, decode_frame
from repro.net.eapol import EapolFrame
from repro.net.ether import EthernetFrame, EtherType
from repro.net.icmp import IcmpMessage, Icmpv6Message
from repro.net.igmp import IgmpMessage, IgmpType
from repro.net.ipv4 import Ipv4Packet
from repro.net.llc import LlcFrame
from repro.net.tcp import TcpFlags, TcpSegment
from repro.net.udp import UdpDatagram
from repro.protocols.coap import CoapCode, CoapMessage
from repro.protocols.dhcp import DhcpMessage
from repro.protocols.dhcpv6 import Dhcpv6Message, Dhcpv6MessageType
from repro.protocols.dns import DnsMessage, DnsQuestion
from repro.protocols.http import HttpRequest, HttpResponse
from repro.protocols.mdns import ServiceAdvertisement
from repro.protocols.netbios import NetbiosNsQuery
from repro.protocols.rtp import RtpPacket
from repro.protocols.rtsp import RtspRequest, RtspResponse
from repro.protocols.ssdp import SsdpMessage
from repro.protocols.stun import StunMessage
from repro.protocols.tls import ContentType, TlsRecord, TlsVersion
from repro.protocols.tplink_shp import TplinkShpMessage
from repro.protocols.tuyalp import TuyaLpMessage

#: (decoder, one valid encoding) — the fuzz seeds.  Every entry's
#: decoder was wrapped with ``guarded_decode``.
CORPUS = [
    (ArpPacket.decode,
     ArpPacket(ArpOp.REQUEST, "02:00:00:00:00:01", "192.168.10.2",
               "00:00:00:00:00:00", "192.168.10.3").encode()),
    (EapolFrame.decode, EapolFrame(body=b"\x01" * 24).encode()),
    (IcmpMessage.decode, IcmpMessage.echo_request(7, 1).encode()),
    (Icmpv6Message.decode, Icmpv6Message(128, body=b"\x00" * 8).encode()),
    (IgmpMessage.decode,
     IgmpMessage(IgmpType.V2_MEMBERSHIP_REPORT, "224.0.0.251").encode()),
    (LlcFrame.decode, LlcFrame(0x42, 0x42, 3, b"\x00\x00").encode()),
    (TcpSegment.decode,
     TcpSegment(40000, 80, seq=7, flags=TcpFlags.SYN).encode()),
    (UdpDatagram.decode, UdpDatagram(5353, 5353, b"payload").encode()),
    (CoapMessage.decode,
     CoapMessage(CoapCode.GET, message_id=9, uri_path=["a", "b"]).encode()),
    (DhcpMessage.decode,
     DhcpMessage.discover("02:00:00:00:00:01", 7, hostname="plug").encode()),
    (Dhcpv6Message.decode,
     Dhcpv6Message(Dhcpv6MessageType.SOLICIT, 0x123456,
                   {1: b"\x00\x03\x00\x01" + b"\x02" * 6}).encode()),
    (DnsMessage.decode,
     DnsMessage(transaction_id=4,
                questions=[DnsQuestion("device.local", 1)]).encode()),
    (HttpRequest.decode,
     HttpRequest("GET", "/status", headers={"Host": "hub.local"}).encode()),
    (HttpResponse.decode,
     HttpResponse(200, "OK", headers={"Server": "hub"}, body=b"ok").encode()),
    (DnsMessage.decode,
     ServiceAdvertisement("_hue._tcp.local", "Hue", "hue.local", 443,
                          "192.168.10.2").to_response().encode()),
    (NetbiosNsQuery.decode, NetbiosNsQuery("CHROMECAST").encode()),
    (RtpPacket.decode, RtpPacket(96, 1, 160, 0xDEAD, b"\x00" * 20).encode()),
    (RtspRequest.decode,
     RtspRequest("DESCRIBE", "rtsp://cam.local/stream").encode()),
    (RtspResponse.decode, RtspResponse(200, "OK").encode()),
    (SsdpMessage.decode, SsdpMessage.msearch().encode()),
    (StunMessage.decode, StunMessage(1, b"\x07" * 12).encode()),
    (TlsRecord.decode,
     TlsRecord(ContentType.APPLICATION_DATA, TlsVersion.TLS_1_2,
               b"\x17" * 32).encode()),
    (TplinkShpMessage.decode, TplinkShpMessage.get_sysinfo_query().encode()),
    (TuyaLpMessage.decode,
     TuyaLpMessage.discovery("gwid", "prodkey", "192.168.10.9").encode()),
]

CORPUS_IDS = [
    f"{entry[0].__self__.__name__}-{index}" for index, entry in enumerate(CORPUS)
]


def _mutations(rng, data, rounds=120):
    """The deterministic damage set: truncations, bit flips, payload mutation."""
    for cut in range(len(data)):
        yield data[:cut]
    for _ in range(rounds):
        yield corrupt_bits(rng, data, max_bits=rng.randint(1, 12))
        yield truncate_bytes(rng, corrupt_bits(rng, data, max_bits=4), min_keep=0)
        yield mutate_discovery_payload(rng, data)


class TestParserContract:
    @pytest.mark.parametrize("decoder,valid", CORPUS, ids=CORPUS_IDS)
    def test_decoder_round_trips_valid_input(self, decoder, valid):
        assert decoder(valid) is not None

    @pytest.mark.parametrize("decoder,valid", CORPUS, ids=CORPUS_IDS)
    def test_mutated_input_raises_only_valueerror(self, decoder, valid):
        rng = random.Random(f"fuzz:{decoder.__self__.__name__}")
        for mutated in _mutations(rng, valid):
            try:
                decoder(mutated)
            except ValueError:
                pass  # the entire allowed failure surface


class TestFrameContract:
    def _frames(self):
        for decoder, payload in CORPUS:
            datagram = UdpDatagram(40000, 5353, payload)
            packet = Ipv4Packet("192.168.10.2", "192.168.10.3", 17,
                                datagram.encode())
            yield EthernetFrame("02:00:00:00:00:02", "02:00:00:00:00:03",
                                EtherType.IPV4, packet.encode()).encode()

    def test_decode_frame_never_raises_on_mutations(self):
        rng = random.Random("fuzz:frames")
        errors = DecodeErrorLog()
        decoded = 0
        for frame in self._frames():
            for mutated in _mutations(rng, frame, rounds=40):
                packet = decode_frame(mutated, timestamp=1.0, errors=errors)
                assert packet is not None
                decoded += 1
        assert decoded > 3000
        # Deep damage must actually hit the quarantine path.
        assert errors.total > 0
        assert "ethernet" in errors.counts
