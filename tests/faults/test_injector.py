"""FaultInjector behaviour: determinism, fault kinds, receiver faults."""

import pytest

from repro.faults import EMPTY_PLAN, FaultInjector, FaultPlan
from repro.simnet.lan import Lan
from repro.simnet.node import Node
from repro.simnet.services import ServiceInfo, ServiceTable
from repro.simnet.simulator import Simulator


def _pair():
    simulator = Simulator()
    lan = Lan(simulator)
    client = lan.attach(Node("client", "02:aa:00:00:00:01", "192.168.10.21"))
    server = lan.attach(
        Node("server", "02:aa:00:00:00:02", "192.168.10.22",
             services=ServiceTable([
                 ServiceInfo(80, "tcp", "http", "HTTP/1.1 200 OK", "httpd", "1.0"),
             ])))
    return simulator, lan, client, server


def _chatter(lan, client, server, frames=400):
    """One multicast datagram per tick: no receivers, so no reply traffic
    muddies the 1:1 mapping between sends and captured frames."""
    simulator = lan.simulator
    for index in range(frames):
        simulator.schedule(
            0.01 * index,
            lambda i=index: client.send_udp("239.10.10.10", 9000, b"payload-%d" % i))
    simulator.run(until=frames * 0.01 + 1.0)


LOSSY = FaultPlan.from_dict({
    "name": "lossy",
    "links": [{"src": "*", "dst": "*", "loss": 0.2, "duplicate": 0.1,
               "truncate": 0.1, "corrupt": 0.1,
               "delay": {"probability": 0.1}}],
})


class TestEquivalence:
    def test_empty_plan_injector_is_inert(self):
        """Zero-fault equivalence: EMPTY_PLAN == no injector, byte for byte."""
        runs = []
        for plan in (None, EMPTY_PLAN):
            simulator, lan, client, server = _pair()
            if plan is not None:
                FaultInjector(plan, seed=7).install(lan)
            _chatter(lan, client, server)
            runs.append(list(lan.capture.records))
        assert runs[0] == runs[1]

    def test_empty_plan_counts_nothing(self):
        injector = FaultInjector(EMPTY_PLAN, seed=7)
        assert not injector.active
        assert injector.summary()["total"] == 0


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        captures, counters = [], []
        for _ in range(2):
            simulator, lan, client, server = _pair()
            injector = FaultInjector(LOSSY, seed=42).install(lan)
            _chatter(lan, client, server)
            captures.append(list(lan.capture.records))
            counters.append(dict(injector.counts))
        assert captures[0] == captures[1]
        assert counters[0] == counters[1]
        assert sum(counters[0].values()) > 0

    def test_different_seed_different_schedule(self):
        counters = []
        for seed in (1, 2):
            simulator, lan, client, server = _pair()
            injector = FaultInjector(LOSSY, seed=seed).install(lan)
            _chatter(lan, client, server)
            counters.append(dict(injector.counts))
        assert counters[0] != counters[1]

    def test_seed_salt_changes_schedule(self):
        counters = []
        for salt in (0, 1):
            plan = FaultPlan.from_dict({
                "name": "lossy", "seed_salt": salt,
                "links": [{"loss": 0.2}],
            })
            simulator, lan, client, server = _pair()
            injector = FaultInjector(plan, seed=7).install(lan)
            _chatter(lan, client, server)
            counters.append(dict(injector.counts))
        assert counters[0] != counters[1]


class TestFaultKinds:
    def test_loss_removes_frames_from_capture(self):
        simulator, lan, client, server = _pair()
        injector = FaultInjector(
            FaultPlan.from_dict({"links": [{"loss": 0.5}]}), seed=7).install(lan)
        _chatter(lan, client, server, frames=200)
        assert injector.counts["loss"] > 0
        assert lan.capture.packet_count == 200 - injector.counts["loss"]

    def test_duplicates_add_frames_to_capture(self):
        simulator, lan, client, server = _pair()
        injector = FaultInjector(
            FaultPlan.from_dict({"links": [{"duplicate": 0.5}]}), seed=7).install(lan)
        _chatter(lan, client, server, frames=200)
        assert injector.counts["duplicate"] > 0
        assert lan.capture.packet_count == 200 + injector.counts["duplicate"]

    def test_truncation_quarantines_malformed_frames(self):
        simulator, lan, client, server = _pair()
        injector = FaultInjector(
            FaultPlan.from_dict({"links": [{"truncate": 0.6}]}), seed=7).install(lan)
        _chatter(lan, client, server, frames=200)
        assert injector.counts["truncate"] > 0
        packets = lan.capture.decoded()
        assert len(packets) == 200  # every frame decodes, damaged or not
        # Deep truncation lands in the quarantine; shallow cuts may still
        # parse (payload-only loss), so quarantine <= truncations.
        assert len(lan.capture.decode_errors) <= injector.counts["truncate"]
        assert any(packet.is_malformed for packet in packets)

    def test_delay_reorders_capture_timestamps(self):
        simulator, lan, client, server = _pair()
        injector = FaultInjector(
            FaultPlan.from_dict({"links": [{"delay": {
                "probability": 0.3, "min_seconds": 0.05, "max_seconds": 0.2}}]}),
            seed=7).install(lan)
        _chatter(lan, client, server, frames=100)
        assert injector.counts["delay"] > 0
        # Capture stays chronologically ordered (frames air at their
        # delayed time), but payload order differs from send order.
        stamps = [timestamp for timestamp, _ in lan.capture.records]
        assert stamps == sorted(stamps)
        payloads = [data[-12:] for _, data in lan.capture.records]
        assert payloads != sorted(payloads, key=lambda raw: int(raw.split(b"-")[-1]))

    def test_link_pattern_scopes_faults(self):
        simulator, lan, client, server = _pair()
        plan = FaultPlan.from_dict(
            {"links": [{"src": "server", "dst": "*", "loss": 1.0}]})
        FaultInjector(plan, seed=7).install(lan)
        _chatter(lan, client, server, frames=50)  # client->server unaffected
        assert lan.capture.packet_count == 50

    def test_discovery_mutation_targets_discovery_ports_only(self):
        simulator, lan, client, server = _pair()
        plan = FaultPlan.from_dict(
            {"discovery": {"probability": 1.0, "protocols": ["mdns"]}})
        injector = FaultInjector(plan, seed=7).install(lan)
        client.send_udp(server.ip, 9000, b"not-discovery")
        assert injector.counts.get("mutate_discovery", 0) == 0
        client.send_udp("224.0.0.251", 5353, b"\x00\x00\x84\x00" + b"\x00" * 20,
                        src_port=5353)
        assert injector.counts["mutate_discovery"] == 1


class TestReceiverFaults:
    def test_flapped_sender_goes_off_air(self):
        simulator, lan, client, server = _pair()
        plan = FaultPlan.from_dict(
            {"flaps": [{"device": "client", "start": 1.0, "duration": 2.0}]})
        injector = FaultInjector(plan, seed=7).install(lan)
        received = []
        server.add_raw_hook(lambda _node, packet: received.append(packet.timestamp))
        # Link-local multicast reaches every stack without triggering
        # unicast replies, so frame counts stay exact.
        for at in (0.5, 1.5, 2.5, 3.5):
            simulator.schedule(at, lambda: client.send_udp("224.0.0.99", 9000, b"x"))
        simulator.run(until=5.0)
        assert received == [0.5, 3.5]
        assert injector.counts["flap_drop_tx"] == 2
        # Down devices transmit nothing, so the capture misses those too.
        assert lan.capture.packet_count == 2

    def test_flapped_receiver_misses_delivery_but_capture_sees_frame(self):
        simulator, lan, client, server = _pair()
        plan = FaultPlan.from_dict(
            {"flaps": [{"device": "server", "start": 0.0, "duration": 10.0}]})
        injector = FaultInjector(plan, seed=7).install(lan)
        received = []
        server.add_raw_hook(lambda _node, packet: received.append(packet))
        client.send_udp(server.ip, 9000, b"x")
        assert received == []
        assert injector.counts["flap_drop_rx"] == 1
        assert lan.capture.packet_count == 1  # the AP still saw it

    def test_unresponsive_port_eats_delivery(self):
        simulator, lan, client, server = _pair()
        plan = FaultPlan.from_dict({"unresponsive_ports": [
            {"device": "server", "transport": "udp", "port": 9000}]})
        injector = FaultInjector(plan, seed=7).install(lan)
        received = []
        server.add_raw_hook(lambda _node, packet: received.append(packet))
        client.send_udp(server.ip, 9000, b"x")
        client.send_udp(server.ip, 9001, b"y")
        assert len(received) == 1  # only the un-filtered port got through
        assert injector.counts["port_unresponsive"] == 1

    def test_tcp_exchange_aborts_against_down_server(self):
        simulator, lan, client, server = _pair()
        plan = FaultPlan.from_dict(
            {"flaps": [{"device": "server", "start": 0.0, "duration": 100.0}]})
        FaultInjector(plan, seed=7).install(lan)
        before = lan.capture.packet_count
        result = lan.tcp_exchange(client, server, 80, [b"GET /"], [b"200 OK"])
        simulator.run(until=10.0)
        assert result is None
        # Only the half-open SYN aired: no handshake, data, or FIN.
        assert lan.capture.packet_count == before + 1
