#!/usr/bin/env python3
"""A full §3.1-style measurement campaign, stage by stage.

Reproduces the paper's lab methodology explicitly: boot the testbed,
deploy honeypots, capture passively, write tcpdump-style per-MAC pcaps
to disk, run nmap-style scans and the Nessus analogue, and print the
Table 4 response correlation.

Run:  python examples/testbed_campaign.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.core.responses import category_of_profile, correlate_responses
from repro.core.threat_report import build_threat_report
from repro.devices.behaviors import build_testbed
from repro.honeypot.farm import HoneypotFarm
from repro.report.tables import render_table, render_table4
from repro.scan.portscan import PortScanner
from repro.scan.vulnscan import VulnerabilityScanner


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())

    print("== Stage 1: build the lab and deploy honeypots ==")
    testbed = build_testbed(seed=7)
    farm = HoneypotFarm.deploy(testbed.lan)
    print(f"   {len(testbed.devices)} devices + {len(farm.honeypots)} honeypots attached")

    print("== Stage 2: passive capture (20 simulated minutes) ==")
    testbed.run(1200.0)
    capture = testbed.lan.capture
    print(f"   {capture.packet_count} packets captured at the AP")
    paths = capture.write_per_mac_pcaps(output_dir / "pcaps")
    print(f"   {len(paths)} per-MAC pcap files written to {output_dir / 'pcaps'}")

    print("== Stage 3: honeypot observations ==")
    scanners = farm.scanners_observed()
    print(f"   {farm.contact_count()} contacts from {len(scanners)} distinct MACs")
    rows = []
    for mac, protocols in sorted(scanners.items())[:10]:
        node = testbed.lan._nodes_by_mac.get(
            next(iter([m for m in testbed.lan._nodes_by_mac if str(m) == mac]), None)
        )
        name = node.name if node else "?"
        rows.append((mac, name, ", ".join(protocols)))
    print(render_table(["MAC", "device", "honeypot protocols contacted"], rows))

    print("== Stage 4: active scans ==")
    scanner = PortScanner()
    testbed.lan.attach(scanner)
    capture.keep_bytes = False  # scans are a separate dataset
    report = scanner.sweep(targets=testbed.devices)
    print(f"   open-port devices: {report.devices_with_open_ports}, "
          f"unique TCP ports: {len(report.unique_open_ports('tcp'))}, "
          f"unique UDP ports: {len(report.unique_open_ports('udp'))}")

    print("== Stage 5: vulnerability scan ==")
    findings = VulnerabilityScanner().scan(testbed.devices)
    by_severity = {}
    for finding in findings:
        by_severity.setdefault(finding.severity, []).append(finding)
    for severity in ("critical", "high", "medium", "low"):
        for finding in by_severity.get(severity, [])[:4]:
            print(f"   [{severity:8s}] {finding.device}: {finding.title}")

    print("== Stage 6: threat + response analysis ==")
    macs = {str(node.mac): node.name for node in testbed.devices}
    categories = {node.name: category_of_profile(node.profile) for node in testbed.devices}
    packets = [  # decode from the pcap artifacts, like the real pipeline
        packet for path in (output_dir / "pcaps").glob("*.pcap")
        for packet in _read_decoded(path)
    ]
    threat = build_threat_report(packets, macs, findings)
    print(f"   plaintext HTTP devices: {len(threat.plaintext_http_devices)}; "
          f"local TLS devices: {threat.tls_device_count}")
    correlation = correlate_responses(packets, macs, categories)
    print(render_table4(correlation))


def _read_decoded(path):
    from repro.net.decode import decode_frame
    from repro.net.pcap import PcapReader

    with PcapReader(path) as reader:
        for captured in reader:
            yield decode_frame(captured.data, captured.timestamp)


if __name__ == "__main__":
    main()
