#!/usr/bin/env python3
"""§6.3 end to end: fingerprint households from mDNS/SSDP identifiers.

Generates the synthetic IoT-Inspector-style corpus, extracts names /
UUIDs / MAC addresses from the raw payloads, prints Table 2, and then
*plays the attacker*: given one household's extracted identifier set,
re-identifies it among all 3,860 households.

Run:  python examples/household_fingerprinting.py
"""

from repro.core.fingerprint import fingerprint_households
from repro.inspector.entropy import analyze_dataset, device_identifiers
from repro.inspector.generate import generate_dataset
from repro.report.tables import render_table2


def main() -> None:
    print("Generating the crowdsourced corpus (3,860 households)...")
    dataset = generate_dataset(seed=23)
    report = fingerprint_households(dataset=dataset)
    print()
    print(render_table2(report))

    # --- the attack ---------------------------------------------------------
    print("\n== Re-identification demo ==")
    analysis = analyze_dataset(dataset)

    # Build the attacker's index: fingerprint -> household ids.
    index = {}
    for row in analysis.rows.values():
        for household_id, fingerprint in row.fingerprints.items():
            index.setdefault(fingerprint, set()).add(household_id)

    # Pick a victim household with a UUID-exposing device and pretend we
    # only observed its local mDNS/SSDP traffic (e.g. from a mobile SDK).
    victim = next(
        household for household in dataset.households
        if any(device_identifiers(device)["uuid"] for device in household.devices)
    )
    observed = set()
    for device in victim.devices:
        for values in device_identifiers(device).values():
            observed |= values
    print(f"victim: {victim.user_id} with {victim.device_count} devices")
    print(f"observed identifiers: {sorted(observed)[:4]}{'...' if len(observed) > 4 else ''}")

    candidates = set()
    for fingerprint, households in index.items():
        if fingerprint and fingerprint <= observed:
            candidates |= households if len(candidates) == 0 else candidates & households
    matches = {
        household_id for fingerprint, households in index.items()
        if fingerprint and fingerprint <= observed for household_id in households
    }
    print(f"households matching the observed fingerprint: {len(matches & {victim.user_id}) and sorted(matches)[:3]}")
    if matches == {victim.user_id}:
        print("=> the household is UNIQUELY identified by its broadcast identifiers")
    else:
        print(f"=> fingerprint narrows 3,860 households down to {len(matches)}")


if __name__ == "__main__":
    main()
