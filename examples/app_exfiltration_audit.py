#!/usr/bin/env python3
"""§6.1/§6.2 end to end: audit what apps send to the cloud.

Runs the paper's named case-study apps (Alexa, Tuya Smart, TP-Link
Kasa, Blueair, CNN+AppDynamics, Lucky Time+innosdk, Simple
Speedcheck+umlaut, the NetBIOS scanners) on the instrumented phone
inside the simulated lab, then prints every decrypted cloud flow:
endpoint, party, SDK, and the concrete identifier values harvested
from the LAN.

Run:  python examples/app_exfiltration_audit.py
"""

from repro.apps.dataset import named_case_study_apps
from repro.apps.runtime import InstrumentedPhone
from repro.core.exfiltration import audit_app_runs, sdk_case_studies
from repro.devices.behaviors import build_testbed
from repro.report.tables import render_table


def main() -> None:
    print("Booting the lab (30 simulated seconds) and attaching the phone...")
    testbed = build_testbed(seed=7)
    testbed.run(30.0)
    phone = InstrumentedPhone()
    testbed.lan.attach(phone)

    results = []
    for app in named_case_study_apps():
        result = phone.run_app(app)
        results.append(result)
        print(f"\n== {app.name} ({app.package}) ==")
        denied = [a for a in result.api_accesses if not a.granted and not a.via_side_channel]
        side = [a for a in result.api_accesses if a.via_side_channel]
        if denied:
            print(f"   permission denied: {', '.join(a.api.value for a in denied)}")
        if side:
            print(f"   !! obtained via side channel despite denial: "
                  f"{', '.join(a.api.value for a in side)}")
        for flow in result.cloud_flows:
            direction = "<=" if flow.direction == "down" else "=>"
            sdk = f" [SDK: {flow.sdk}]" if flow.sdk else ""
            encoding = " (base64-encoded)" if flow.encoded_base64 else ""
            print(f"   {direction} {flow.endpoint} ({flow.party}-party){sdk}{encoding}")
            for key, value in flow.payload.items():
                rendered = value if isinstance(value, str) else ", ".join(map(str, value))
                print(f"        {key}: {rendered[:90]}")

    audit = audit_app_runs(results)
    print("\n== SDK case studies ==")
    rows = [
        (sdk, ", ".join(data["endpoints"]), ", ".join(data["identifiers"]))
        for sdk, data in sdk_case_studies(audit).items()
    ]
    print(render_table(["SDK", "endpoints", "identifiers collected"], rows))


if __name__ == "__main__":
    main()
