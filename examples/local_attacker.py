#!/usr/bin/env python3
"""The §2 threat model, played out: an attacker node inside the LAN.

A compromised device (think: spyware on a phone, or a malicious IoT
gadget behind the firewall) joins the simulated home network and, using
nothing but standard discovery protocols:

1. harvests every device's MAC address via an ARP sweep,
2. collects hostnames/UUIDs/models via mDNS and SSDP,
3. extracts the home's GPS coordinates from a TP-Link plug, and
4. toggles that plug — no authentication required (§5.1).

Run:  python examples/local_attacker.py
"""

import ipaddress

from repro.devices.behaviors import build_testbed
from repro.net.decode import DecodedPacket
from repro.protocols.dns import DnsMessage
from repro.protocols.mdns import MDNS_GROUP_V4, MDNS_PORT, ServiceAdvertisement, mdns_query
from repro.protocols.ssdp import SSDP_GROUP_V4, SSDP_PORT, SsdpMessage
from repro.protocols.tplink_shp import TPLINK_SHP_PORT, TplinkShpMessage
from repro.report.tables import render_table
from repro.simnet.node import Node


class AttackerNode(Node):
    """A quiet node that only listens and probes."""

    def __init__(self):
        super().__init__("attacker", "02:66:6f:6f:00:01", "0.0.0.0", vendor="?")
        self.inbox = []
        self.add_raw_hook(lambda _node, packet: self.inbox.append(packet))

    def drain(self):
        packets, self.inbox = self.inbox, []
        return packets


def main() -> None:
    testbed = build_testbed(seed=7)
    testbed.run(30.0)
    attacker = AttackerNode()
    testbed.lan.attach(attacker)

    # -- 1. ARP sweep ----------------------------------------------------------
    print("== 1. ARP sweep of the /24 ==")
    for host in ipaddress.ip_network(testbed.lan.subnet).hosts():
        if str(host) != attacker.ip:
            attacker.send_arp_request(str(host))
    macs = {}
    for packet in attacker.drain():
        if packet.arp is not None and packet.arp.op == 2:
            macs[packet.arp.sender_ip] = str(packet.arp.sender_mac)
    print(f"   harvested {len(macs)} MAC addresses (persistent device IDs)")

    # -- 2. mDNS + SSDP --------------------------------------------------------
    print("== 2. mDNS/SSDP harvesting ==")
    attacker.join_group(MDNS_GROUP_V4)
    attacker.join_group(SSDP_GROUP_V4)
    query = mdns_query(["_googlecast._tcp.local", "_hap._tcp.local", "_hue._tcp.local",
                        "_amzn-alexa._tcp.local", "_airplay._tcp.local"])
    attacker.send_udp(MDNS_GROUP_V4, MDNS_PORT, query.encode(), src_port=MDNS_PORT)
    attacker.send_udp(SSDP_GROUP_V4, SSDP_PORT, SsdpMessage.msearch().encode(), src_port=50000)
    inventory = []
    for packet in attacker.drain():
        if packet.udp is None:
            continue
        if packet.udp.src_port == MDNS_PORT:
            try:
                message = DnsMessage.decode(packet.udp.payload)
            except ValueError:
                continue
            for advert in ServiceAdvertisement.from_response(message):
                inventory.append((str(packet.frame.src), advert.instance_name, advert.hostname))
        elif packet.udp.src_port == SSDP_PORT:
            try:
                message = SsdpMessage.decode(packet.udp.payload)
            except ValueError:
                continue
            inventory.append((str(packet.frame.src), message.server or "", message.uuid() or ""))
    print(render_table(["MAC", "advertised identity", "hostname / UUID"],
                       inventory[:12], title="   harvested inventory (first 12)"))

    # -- 3. geolocation via TPLINK-SHP ----------------------------------------
    print("== 3. TPLINK-SHP geolocation extraction ==")
    attacker.send_udp("255.255.255.255", TPLINK_SHP_PORT,
                      TplinkShpMessage.get_sysinfo_query().encode(), src_port=50001)
    plug_ip = None
    for packet in attacker.drain():
        if packet.udp and packet.udp.src_port == TPLINK_SHP_PORT:
            info = TplinkShpMessage.decode(packet.udp.payload).sysinfo
            if info:
                plug_ip = packet.src_ip
                print(f"   {info['alias']} at {packet.src_ip}: "
                      f"lat={info['latitude']}, lon={info['longitude']} "
                      f"(the home's GPS position, in plaintext)")

    # -- 4. unauthenticated control --------------------------------------------
    print("== 4. unauthenticated plug control ==")
    if plug_ip is not None:
        plug = testbed.lan.node_by_ip(plug_ip)
        command = TplinkShpMessage.set_relay_state(True).encode("tcp")
        reply = TplinkShpMessage({"system": {"set_relay_state": {"err_code": 0}}}).encode("tcp")
        testbed.lan.tcp_exchange(attacker, plug, TPLINK_SHP_PORT, [command], [reply])
        testbed.run(1.0)  # let the scheduled exchange play out
        print(f"   sent set_relay_state(on) to {plug.name} — accepted without any credentials")
    print("\nEverything above used standard protocols from inside the LAN —")
    print("exactly the zero-trust argument of §7.")


if __name__ == "__main__":
    main()
