#!/usr/bin/env python3
"""Quickstart: run the full study pipeline on the simulated MonIoTr lab.

Builds the 93-device testbed, collects 10 simulated minutes of passive
traffic, deploys honeypots, runs the active scans and a sample of the
mobile-app dataset, then prints the headline numbers next to the
paper's.

Run:  python examples/quickstart.py
"""

from repro import StudyPipeline
from repro.report.tables import render_comparison, render_figure2, render_table1


def main() -> None:
    pipeline = StudyPipeline(seed=7, passive_duration=600.0, app_sample_size=60)
    print("Building the simulated MonIoTr lab and collecting traffic...")
    report = pipeline.run()

    print(f"\nCaptured {report.capture_packets} packets at the AP; "
          f"{report.honeypot_contacts} honeypot contacts.\n")

    summary = report.device_graph.summary()
    print(render_comparison([
        ("devices communicating locally (Fig. 1)", "43/93",
         f"{summary['devices_communicating']}/{summary['devices_total']}"),
        ("classifier disagreement (Fig. 3)", "16%",
         f"{report.crossval.disagree_fraction:.0%}"),
        ("devices with open ports (§4.2)", 61,
         report.scan_report.devices_with_open_ports),
        ("local TLS devices (§5.2)", 32, report.threat.tls_device_count),
        ("periodic discovery flows (App. D.1)", "88%",
         f"{report.periodicity.periodic_fraction:.0%}"),
    ], title="Headline results — paper vs this run"))

    print()
    print(render_figure2(report.census, top=15))
    print()
    print(render_table1(report.exposure))


if __name__ == "__main__":
    main()
